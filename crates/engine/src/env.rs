//! The execution environment: plans in, latencies out.
//!
//! [`ExecutionEnv::execute`] is the single entry point the learning loop
//! (and today, the planners' evaluation harness) uses to "run" a plan:
//!
//! 1. the plan is validated against the engine's hint space
//!    ([`EngineProfile::bushy_hints`]) and the query's join graph;
//! 2. the **plan cache** (§7 of the paper) is consulted by structural
//!    [`Plan::fingerprint`] — a reissued plan returns its recorded
//!    latency without re-execution and without advancing the clock;
//! 3. otherwise the plan's work is charged via
//!    [`balsa_cost::physical_cost`] evaluated on **true** cardinalities
//!    ([`TrueCards`]), converted to seconds with the profile's
//!    calibration constants plus deterministic log-normal noise;
//! 4. **timeouts** (§4.3) early-terminate: when the latency exceeds the
//!    caller's budget, the outcome reports `timed_out` and only the
//!    budget's worth of simulated time elapses.
//!
//! All simulated time flows into an internal [`SimClock`], providing the
//! x-axis of the paper's learning-curve figures.

use crate::faults::{
    ExhaustedPolicy, FaultConfig, FaultInjector, FaultKind, ResilienceStats, RetryPolicy,
};
use crate::profile::EngineProfile;
use crate::sim_clock::SimClock;
use crate::truecard::{query_key, TrueCards};
use balsa_cost::{join_cost, physical_cost, scan_cost, SubtreeCost};
use balsa_query::{Plan, Query};
use balsa_storage::Database;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Why the environment refused to execute a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvError {
    /// The engine only accepts left-deep hints (CommDbSim, §8.2) and the
    /// plan is bushy.
    BushyHintRejected,
    /// The plan does not cover exactly the query's tables, or joins
    /// disconnected inputs (cross products are outside the search space).
    InvalidPlan(String),
}

impl std::fmt::Display for EnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvError::BushyHintRejected => {
                write!(f, "engine accepts only left-deep plan hints")
            }
            EnvError::InvalidPlan(why) => write!(f, "invalid plan: {why}"),
        }
    }
}

impl std::error::Error for EnvError {}

/// Why an execution failed — the taxonomy callers dispatch recovery on.
///
/// [`ExecError::Env`] failures are **fatal**: the plan itself is
/// unexecutable (wrong table cover, cross product, rejected hint shape)
/// and will fail identically on every retry. [`ExecError::Fault`]
/// failures are **retryable**: an injected engine fault (transient
/// error, crash, watchdog-killed hang) killed this *attempt*, and the
/// same plan may well succeed on the next one — faults are drawn per
/// `(query, plan, attempt)`, exactly like real engine flakiness.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The environment refused the plan — fatal, never retry.
    Env(EnvError),
    /// An injected fault killed this attempt — retryable.
    Fault {
        /// Which fault class struck.
        kind: FaultKind,
        /// Wall seconds the plan provably ran before being killed — an
        /// honest lower bound on its latency, usable as a §4.3-style
        /// censoring point when retries are exhausted.
        ran_secs: f64,
        /// Extra non-execution wall wasted (engine restart after a
        /// crash); part of the honest makespan but *not* evidence
        /// about the plan's latency.
        overhead_secs: f64,
    },
}

impl ExecError {
    /// Whether retrying the same execution can possibly succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ExecError::Fault { .. })
    }

    /// Total wall seconds this failed attempt wasted.
    pub fn wasted_secs(&self) -> f64 {
        match self {
            ExecError::Env(_) => 0.0,
            ExecError::Fault {
                ran_secs,
                overhead_secs,
                ..
            } => ran_secs + overhead_secs,
        }
    }
}

impl From<EnvError> for ExecError {
    fn from(e: EnvError) -> Self {
        ExecError::Env(e)
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Env(e) => write!(f, "{e}"),
            ExecError::Fault {
                kind,
                ran_secs,
                overhead_secs,
            } => write!(
                f,
                "injected {kind:?} after {ran_secs:.3}s (+{overhead_secs:.3}s overhead)"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// Result of one (possibly cached or timed-out) plan execution.
#[derive(Debug, Clone, Copy)]
pub struct ExecOutcome {
    /// Observed latency in seconds. On timeout this equals the budget
    /// (the execution was killed there).
    pub latency_secs: f64,
    /// Abstract work the plan was charged (true-cardinality physical
    /// cost), independent of noise and timeout.
    pub work: f64,
    /// Whether the execution hit the caller's timeout budget.
    pub timed_out: bool,
    /// Whether the latency came from the plan cache (no time elapsed).
    pub from_cache: bool,
    /// The injected fault this outcome absorbed without failing, if any
    /// (a latency spike, or a hang converted into a budget timeout).
    /// Always `None` when fault injection is off.
    pub fault: Option<FaultKind>,
}

/// A recorded execution in the plan cache.
#[derive(Debug, Clone, Copy)]
struct CachedRun {
    latency_secs: f64,
    work: f64,
}

/// One subtree's observed latency from a labeled execution
/// ([`ExecutionEnv::execute_labeled`]) — the per-subplan experience the
/// learning loop records (§3.2's data augmentation over "each subplan
/// T' of T", with §4.3 timeout censoring).
#[derive(Debug, Clone)]
pub struct SubtreeObs {
    /// The subplan this observation labels.
    pub plan: Arc<Plan>,
    /// Observed subtree latency in seconds. When `censored`, this is the
    /// timeout budget — a *lower bound* on the true latency, because the
    /// execution was killed before the subtree finished.
    pub latency_secs: f64,
    /// Whether the label is a timeout-censored lower bound.
    pub censored: bool,
}

/// What a retried execution ([`ExecutionEnv::execute_labeled_retry_uncharged`])
/// reports back: the surviving outcome (if any), the resilience
/// counters, and the honest wall-clock to charge.
#[derive(Debug, Clone)]
pub struct RetryReport {
    /// The labeled outcome: the first successful attempt's, or the
    /// synthesized censored outcome of an exhausted-but-censored
    /// execution, or `None` when the sample was dropped.
    pub outcome: Option<(ExecOutcome, Vec<SubtreeObs>)>,
    /// Faults absorbed, retries spent, backoff accrued.
    pub stats: ResilienceStats,
    /// Execution wall seconds this query's slot occupied (wasted
    /// attempts + the final attempt; cache hits cost nothing), to be
    /// charged into the batch makespan. Backoff wall is separate, in
    /// [`ResilienceStats::backoff_secs_charged`].
    pub exec_secs: f64,
    /// Attempts made (1 = first try succeeded).
    pub attempts: u32,
}

/// A restorable snapshot of the environment's mutable state (plan
/// cache, cache counters, simulated clock) — what a training checkpoint
/// must carry so a killed-and-resumed run replays cache hits and
/// elapsed simulated time bit-identically. Cache entries are sorted by
/// key, so the snapshot itself is deterministic regardless of hash-map
/// iteration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnvSnapshot {
    /// `(query_key, plan_fingerprint, latency_secs, work)` per cached
    /// completed run, sorted by `(query_key, plan_fingerprint)`.
    pub entries: Vec<(u64, u64, f64, f64)>,
    /// Plan-cache hits so far.
    pub hits: u64,
    /// Plan-cache misses so far.
    pub misses: u64,
    /// Elapsed simulated seconds.
    pub clock_secs: f64,
}

/// The simulated execution environment of one engine.
pub struct ExecutionEnv {
    truth: Arc<TrueCards>,
    profile: EngineProfile,
    cache: Mutex<HashMap<(u64, u64), CachedRun>>,
    clock: Mutex<SimClock>,
    hits: Mutex<u64>,
    misses: Mutex<u64>,
    faults: Option<FaultInjector>,
}

impl ExecutionEnv {
    /// Creates an environment over `db` with the given engine profile and
    /// simulated clock.
    pub fn new(db: Arc<Database>, profile: EngineProfile, clock: SimClock) -> Self {
        Self::with_truth(Arc::new(TrueCards::new(db)), profile, clock)
    }

    /// Creates an environment sharing an existing true-cardinality
    /// oracle. Separate environments (e.g. the training env and the
    /// frozen-clock evaluation env, or per-model benchmark envs) keep
    /// independent plan caches and clocks but share the expensive
    /// materialized-join memo — cardinalities are exact ground truth, so
    /// sharing never changes an observed latency.
    pub fn with_truth(truth: Arc<TrueCards>, profile: EngineProfile, clock: SimClock) -> Self {
        Self {
            truth,
            profile,
            cache: Mutex::new(HashMap::new()),
            clock: Mutex::new(clock),
            hits: Mutex::new(0),
            misses: Mutex::new(0),
            faults: None,
        }
    }

    /// Arms deterministic fault injection on this environment. A
    /// config with every rate zero is equivalent to no injector: not a
    /// single latency, label, or clock charge changes.
    pub fn with_faults(mut self, cfg: FaultConfig) -> Self {
        self.faults = if cfg.is_zero() {
            None
        } else {
            Some(FaultInjector::new(cfg))
        };
        self
    }

    /// The armed fault injector, if chaos is on.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// PostgresSim with the paper's default clock — the common fixture.
    pub fn postgres_sim(db: Arc<Database>) -> Self {
        Self::new(db, EngineProfile::postgres_sim(), SimClock::paper_default())
    }

    /// CommDbSim with the paper's default clock.
    pub fn commdb_sim(db: Arc<Database>) -> Self {
        Self::new(db, EngineProfile::commdb_sim(), SimClock::paper_default())
    }

    /// The engine profile in use.
    pub fn profile(&self) -> &EngineProfile {
        &self.profile
    }

    /// The true-cardinality oracle (usable as a [`balsa_card::CardEstimator`]).
    pub fn truth(&self) -> &TrueCards {
        &self.truth
    }

    /// A shareable handle to the oracle, for building sibling
    /// environments via [`ExecutionEnv::with_truth`].
    pub fn truth_arc(&self) -> Arc<TrueCards> {
        self.truth.clone()
    }

    /// The database being executed against.
    pub fn db(&self) -> &Arc<Database> {
        self.truth.db()
    }

    /// Elapsed simulated seconds on the environment's clock.
    pub fn elapsed_secs(&self) -> f64 {
        self.clock.lock().seconds()
    }

    /// Charges planning time to the clock (measured, in seconds).
    pub fn charge_planning(&self, secs: f64) {
        self.clock.lock().charge_planning(secs);
    }

    /// Charges a batch of per-query planning times run on `workers`
    /// parallel planner threads — the wall-clock a parallel planning
    /// phase actually occupies, not the serial sum (see
    /// [`SimClock::charge_planning_parallel`]).
    pub fn charge_planning_parallel(&self, secs: &[f64], workers: usize) {
        self.clock.lock().charge_planning_parallel(secs, workers);
    }

    /// Charges `steps` SGD steps of model updating to the clock.
    pub fn charge_update(&self, steps: u64) {
        self.clock.lock().charge_update(steps);
    }

    /// `(cache hits, cache misses)` of the plan cache so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        (*self.hits.lock(), *self.misses.lock())
    }

    /// Charges raw wall seconds (e.g. retry backoff) to the clock.
    pub fn charge_raw(&self, secs: f64) {
        self.clock.lock().charge_raw(secs);
    }

    /// Captures the environment's mutable state for a checkpoint.
    pub fn snapshot(&self) -> EnvSnapshot {
        let mut entries: Vec<(u64, u64, f64, f64)> = self
            .cache
            .lock()
            .iter()
            .map(|(&(qk, fp), run)| (qk, fp, run.latency_secs, run.work))
            .collect();
        entries.sort_by_key(|a| (a.0, a.1));
        EnvSnapshot {
            entries,
            hits: *self.hits.lock(),
            misses: *self.misses.lock(),
            clock_secs: self.clock.lock().seconds(),
        }
    }

    /// Restores a [`snapshot`] into this (fresh) environment: the plan
    /// cache, its counters, and the simulated clock all resume exactly
    /// where the snapshot was taken.
    ///
    /// [`snapshot`]: ExecutionEnv::snapshot
    pub fn restore(&self, snap: &EnvSnapshot) {
        let mut cache = self.cache.lock();
        cache.clear();
        for &(qk, fp, latency_secs, work) in &snap.entries {
            cache.insert((qk, fp), CachedRun { latency_secs, work });
        }
        drop(cache);
        *self.hits.lock() = snap.hits;
        *self.misses.lock() = snap.misses;
        let mut clock = self.clock.lock();
        let delta = snap.clock_secs - clock.seconds();
        clock.charge_raw(delta);
    }

    /// Whether the engine's hint space accepts this plan shape.
    pub fn accepts(&self, plan: &Plan) -> bool {
        self.profile.bushy_hints || plan.is_left_deep()
    }

    /// Validates that `plan` is an executable join tree for `query`:
    /// covers exactly the query's tables, joins only connected inputs,
    /// and fits the engine's hint space.
    pub fn validate(&self, query: &Query, plan: &Plan) -> Result<(), EnvError> {
        if plan.mask() != query.all_mask() {
            return Err(EnvError::InvalidPlan(format!(
                "plan covers mask {:b}, query needs {:b}",
                plan.mask().0,
                query.all_mask().0
            )));
        }
        let mut disconnected = None;
        plan.visit(&mut |node| {
            if let Plan::Join { left, right, .. } = node {
                if disconnected.is_none() && !query.connected(left.mask(), right.mask()) {
                    disconnected = Some((left.mask(), right.mask()));
                }
            }
        });
        if let Some((l, r)) = disconnected {
            return Err(EnvError::InvalidPlan(format!(
                "cross product between masks {:b} and {:b}",
                l.0, r.0
            )));
        }
        if !self.accepts(plan) {
            return Err(EnvError::BushyHintRejected);
        }
        Ok(())
    }

    /// Executes `plan` for `query` with an optional timeout budget in
    /// seconds, returning the observed outcome.
    ///
    /// Timing model: `latency = startup + work · time_per_work · noise`,
    /// where `work` is [`balsa_cost::physical_cost`] on true
    /// cardinalities and `noise` is a deterministic mean-one log-normal
    /// keyed by (query, plan fingerprint). Cache hits return the recorded
    /// latency and charge no simulated time; fresh executions charge
    /// `min(latency, budget)` to the clock.
    pub fn execute(
        &self,
        query: &Query,
        plan: &Plan,
        timeout_secs: Option<f64>,
    ) -> Result<ExecOutcome, ExecError> {
        match self.execute_uncharged(query, plan, timeout_secs) {
            Ok(outcome) => {
                // Early termination: only the budget's worth of time elapses.
                if !outcome.from_cache {
                    self.clock.lock().charge_executions(&[outcome.latency_secs]);
                }
                Ok(outcome)
            }
            Err(e) => {
                // A faulted attempt still wasted real wall — charge it.
                let wasted = e.wasted_secs();
                if wasted > 0.0 {
                    self.clock.lock().charge_executions(&[wasted]);
                }
                Err(e)
            }
        }
    }

    /// [`ExecutionEnv::execute`] without the clock charge — the building
    /// block for running a batch of executions on worker threads and
    /// then charging the batch's *parallel makespan* in one
    /// [`ExecutionEnv::charge_execution_batch`] call, the way
    /// `charge_planning_parallel` accounts a parallel planning phase.
    /// The caller must charge every non-cached outcome's
    /// `latency_secs`; cache hits cost no simulated time, as in
    /// `execute`.
    pub fn execute_uncharged(
        &self,
        query: &Query,
        plan: &Plan,
        timeout_secs: Option<f64>,
    ) -> Result<ExecOutcome, ExecError> {
        self.execute_attempt_uncharged(query, plan, timeout_secs, 0)
    }

    /// [`ExecutionEnv::execute_uncharged`] with an explicit attempt
    /// number — the fault-injection key's third component. Attempt 0 is
    /// the first try; retries pass 1, 2, … so each attempt draws an
    /// independent (but pinned) fault. With no injector armed the
    /// attempt number is inert.
    pub fn execute_attempt_uncharged(
        &self,
        query: &Query,
        plan: &Plan,
        timeout_secs: Option<f64>,
        attempt: u32,
    ) -> Result<ExecOutcome, ExecError> {
        self.validate(query, plan)?;
        let key = (query_key(query), plan.fingerprint());

        // Cache hits replay a recorded completed run: no engine work is
        // re-done, so no fault can strike the replay.
        if let Some(run) = self.cache.lock().get(&key).copied() {
            *self.hits.lock() += 1;
            return Ok(self.outcome_of(run, timeout_secs, true));
        }

        let work = physical_cost(
            self.truth.db(),
            query,
            plan,
            &*self.truth,
            &self.profile.weights,
            None,
        );
        let noise = self.noise_factor((key.0, latency_hash(plan)));
        let latency_secs = self.profile.startup_secs + work * self.profile.time_per_work * noise;
        let run = CachedRun { latency_secs, work };
        *self.misses.lock() += 1;

        if let Some(inj) = &self.faults {
            if let Some(kind) = inj.draw(key.0, latency_hash(plan), attempt) {
                let draw_key = (key.0, latency_hash(plan), attempt);
                return self.apply_fault(inj, kind, draw_key, run, timeout_secs);
            }
        }

        let outcome = self.outcome_of(run, timeout_secs, false);
        // A killed execution only observes that latency exceeded the
        // budget — caching the full latency would let a tiny-budget probe
        // read it for free on reissue. Only completed runs are recorded.
        if !outcome.timed_out {
            self.cache.lock().insert(key, run);
        }
        Ok(outcome)
    }

    /// Resolves an injected fault into its observable effect. Nothing a
    /// fault touches is ever cached: spiked latencies and killed runs
    /// are one-off observations, and the clean latency was never seen.
    fn apply_fault(
        &self,
        inj: &FaultInjector,
        kind: FaultKind,
        draw_key: (u64, u64, u32),
        run: CachedRun,
        timeout_secs: Option<f64>,
    ) -> Result<ExecOutcome, ExecError> {
        let (qk, plan_hash, attempt) = draw_key;
        match kind {
            FaultKind::LatencySpike(factor) => {
                // The run completes, just slower; the spiked latency is
                // subject to the normal timeout policy.
                let spiked = CachedRun {
                    latency_secs: run.latency_secs * factor,
                    work: run.work,
                };
                let mut outcome = self.outcome_of(spiked, timeout_secs, false);
                outcome.fault = Some(kind);
                Ok(outcome)
            }
            FaultKind::Hang => match timeout_secs {
                // The run stops progressing; the budget's watchdog
                // kills it there — a guaranteed timeout.
                Some(b) => Ok(ExecOutcome {
                    latency_secs: b,
                    work: run.work,
                    timed_out: true,
                    from_cache: false,
                    fault: Some(kind),
                }),
                // No budget: the watchdog only fires after the full
                // latency has been wasted, and reports a kill.
                None => Err(ExecError::Fault {
                    kind,
                    ran_secs: run.latency_secs,
                    overhead_secs: 0.0,
                }),
            },
            FaultKind::Transient | FaultKind::Crash => {
                // The engine died partway through the (budget-capped)
                // run, at a pinned keyed fraction.
                let cap = timeout_secs.map_or(run.latency_secs, |b| run.latency_secs.min(b));
                let ran_secs = inj.abort_fraction(qk, plan_hash, attempt) * cap;
                let overhead_secs = if matches!(kind, FaultKind::Crash) {
                    inj.config().crash_restart_secs
                } else {
                    0.0
                };
                Err(ExecError::Fault {
                    kind,
                    ran_secs,
                    overhead_secs,
                })
            }
        }
    }

    /// Charges a batch of execution latencies gathered from
    /// [`ExecutionEnv::execute_uncharged`] runs as one parallel phase:
    /// the engine's intra-query parallelism spreads the total work, but
    /// the phase can never finish before its longest run (see
    /// [`SimClock::charge_executions`]).
    pub fn charge_execution_batch(&self, latencies: &[f64]) {
        self.clock.lock().charge_executions(latencies);
    }

    /// Executes `plan` like [`ExecutionEnv::execute`] and additionally
    /// returns one labeled observation per subtree (post-order, root
    /// last) — the engine-side feedback of the learning loop.
    ///
    /// Each subtree is charged the same timing model as the whole plan
    /// (its true-cardinality work, the profile's calibration, and the
    /// run's noise factor), so the root observation equals the plan's
    /// uncensored latency. When the run times out at budget `b`, every
    /// subtree whose latency exceeds `b` is reported as `latency = b`
    /// with `censored = true` — a lower bound, exactly what the killed
    /// execution observed. Labels are deterministic and cost no extra
    /// simulated time beyond what `execute` charges.
    pub fn execute_labeled(
        &self,
        query: &Query,
        plan: &Arc<Plan>,
        timeout_secs: Option<f64>,
    ) -> Result<(ExecOutcome, Vec<SubtreeObs>), ExecError> {
        let outcome = self.execute(query, plan, timeout_secs)?;
        Ok((
            outcome,
            self.labels_for(query, plan, timeout_secs, &outcome),
        ))
    }

    /// [`ExecutionEnv::execute_labeled`] without the clock charge — see
    /// [`ExecutionEnv::execute_uncharged`] for the batch-charging
    /// contract.
    pub fn execute_labeled_uncharged(
        &self,
        query: &Query,
        plan: &Arc<Plan>,
        timeout_secs: Option<f64>,
    ) -> Result<(ExecOutcome, Vec<SubtreeObs>), ExecError> {
        self.execute_labeled_attempt_uncharged(query, plan, timeout_secs, 0)
    }

    /// [`ExecutionEnv::execute_labeled_uncharged`] with an explicit
    /// attempt number for the fault-injection key.
    pub fn execute_labeled_attempt_uncharged(
        &self,
        query: &Query,
        plan: &Arc<Plan>,
        timeout_secs: Option<f64>,
        attempt: u32,
    ) -> Result<(ExecOutcome, Vec<SubtreeObs>), ExecError> {
        let outcome = self.execute_attempt_uncharged(query, plan, timeout_secs, attempt)?;
        Ok((
            outcome,
            self.labels_for(query, plan, timeout_secs, &outcome),
        ))
    }

    /// Labels an outcome's subtrees, honoring whatever fault the
    /// outcome absorbed. A latency spike scales every observed subtree
    /// time by the spike factor (the engine really ran that slowly). A
    /// hang loses all intermediate instrumentation — the only honest
    /// observation is that the *root* failed to finish within the
    /// budget, so a hang yields exactly one label: the root, censored
    /// at the budget. Claiming uncensored completions for subtrees
    /// whose true completion the hang may have preceded would fabricate
    /// evidence.
    fn labels_for(
        &self,
        query: &Query,
        plan: &Arc<Plan>,
        timeout_secs: Option<f64>,
        outcome: &ExecOutcome,
    ) -> Vec<SubtreeObs> {
        match outcome.fault {
            Some(FaultKind::Hang) => vec![SubtreeObs {
                plan: plan.clone(),
                latency_secs: outcome.latency_secs,
                censored: true,
            }],
            Some(FaultKind::LatencySpike(f)) => self.subtree_labels(query, plan, timeout_secs, f),
            _ => self.subtree_labels(query, plan, timeout_secs, 1.0),
        }
    }

    /// Executes with bounded retry under `policy`, labeling the final
    /// outcome — the chaos-hardened entry point `train_loop` uses for
    /// fine-tuning executions. Uncharged like
    /// [`ExecutionEnv::execute_uncharged`]: the caller charges
    /// [`RetryReport::exec_secs`] into its batch makespan and
    /// [`ResilienceStats::backoff_secs_charged`] as raw wall.
    ///
    /// Semantics per attempt:
    /// * success (including absorbed spikes/hangs and ordinary
    ///   timeouts) → done, labels as usual;
    /// * fatal [`ExecError::Env`] → returned immediately, nothing
    ///   retried;
    /// * retryable [`ExecError::Fault`] → wasted wall accumulates into
    ///   `exec_secs`, pinned-jitter backoff accumulates into the stats,
    ///   and the next attempt draws its own fault.
    ///
    /// When every attempt faults, the exhausted policy decides:
    /// [`ExhaustedPolicy::Censor`] synthesizes a timeout-censored
    /// outcome at the last attempt's kill point — the plan provably ran
    /// that long without completing, a valid §4.3 lower bound. Note the
    /// censoring wall is the *observed kill time*, **not** the caller's
    /// budget: when the true latency is below the budget, censoring at
    /// the budget would assert a lower bound the run never evidenced.
    /// Subtrees are labeled against the kill wall like an ordinary
    /// timeout (a transient/crash run progresses normally until it
    /// dies, so completions before the kill are real observations).
    /// [`ExhaustedPolicy::Drop`] returns no outcome and counts the
    /// sample as abandoned.
    ///
    /// With no injector armed this is bit-identical to one
    /// [`ExecutionEnv::execute_labeled_uncharged`] call.
    pub fn execute_labeled_retry_uncharged(
        &self,
        query: &Query,
        plan: &Arc<Plan>,
        timeout_secs: Option<f64>,
        policy: &RetryPolicy,
    ) -> Result<RetryReport, ExecError> {
        let mut stats = ResilienceStats::default();
        let mut exec_secs = 0.0;
        let mut last_ran = 0.0;
        let mut last_kind = FaultKind::Transient;
        let max_attempts = policy.max_attempts.max(1);
        for attempt in 0..max_attempts {
            match self.execute_labeled_attempt_uncharged(query, plan, timeout_secs, attempt) {
                Ok((outcome, labels)) => {
                    if let Some(kind) = outcome.fault {
                        stats.count_fault(kind);
                    }
                    if !outcome.from_cache {
                        exec_secs += outcome.latency_secs;
                    }
                    return Ok(RetryReport {
                        outcome: Some((outcome, labels)),
                        stats,
                        exec_secs,
                        attempts: attempt + 1,
                    });
                }
                Err(e @ ExecError::Env(_)) => return Err(e),
                Err(ExecError::Fault {
                    kind,
                    ran_secs,
                    overhead_secs,
                }) => {
                    stats.count_fault(kind);
                    exec_secs += ran_secs + overhead_secs;
                    last_ran = ran_secs;
                    last_kind = kind;
                    if attempt + 1 < max_attempts {
                        stats.retries += 1;
                        stats.backoff_secs_charged +=
                            policy.backoff_secs(query_key(query), attempt);
                    }
                }
            }
        }
        // Every attempt faulted.
        let outcome = match policy.exhausted {
            ExhaustedPolicy::Censor => {
                stats.exhausted_censored += 1;
                // The last attempt provably ran `last_ran` seconds
                // without completing: an honest censoring point.
                let work = physical_cost(
                    self.truth.db(),
                    query,
                    plan,
                    &*self.truth,
                    &self.profile.weights,
                    None,
                );
                let synthetic = ExecOutcome {
                    latency_secs: last_ran,
                    work,
                    timed_out: true,
                    from_cache: false,
                    fault: Some(last_kind),
                };
                let labels = self.subtree_labels(query, plan, Some(last_ran), 1.0);
                Some((synthetic, labels))
            }
            ExhaustedPolicy::Drop => {
                stats.abandoned += 1;
                None
            }
        };
        Ok(RetryReport {
            outcome,
            stats,
            exec_secs,
            attempts: max_attempts,
        })
    }

    /// One observation per subtree of `plan` (post-order, root last),
    /// timed with the run's noise factor (scaled by `factor`, 1.0 for a
    /// clean run, the spike factor for a spiked one) and censored at
    /// the budget.
    fn subtree_labels(
        &self,
        query: &Query,
        plan: &Arc<Plan>,
        timeout_secs: Option<f64>,
        factor: f64,
    ) -> Vec<SubtreeObs> {
        let noise = self.noise_factor((query_key(query), latency_hash(plan)));
        let mut works: Vec<(Arc<Plan>, f64)> = Vec::new();
        self.subtree_works(query, plan, &mut works);
        works
            .into_iter()
            .map(|(sub, work)| {
                let raw = (self.profile.startup_secs + work * self.profile.time_per_work * noise)
                    * factor;
                let censored = timeout_secs.is_some_and(|b| raw > b);
                SubtreeObs {
                    plan: sub,
                    latency_secs: if censored {
                        timeout_secs.expect("censored implies budget")
                    } else {
                        raw
                    },
                    censored,
                }
            })
            .collect()
    }

    /// Total true-cardinality work of every subtree of `plan`, appended
    /// post-order (children first, root last). Built from the same
    /// `scan_cost`/`join_cost` builders as [`balsa_cost::physical_cost`],
    /// so the root entry equals the work `execute` charges.
    fn subtree_works(
        &self,
        query: &Query,
        plan: &Arc<Plan>,
        out: &mut Vec<(Arc<Plan>, f64)>,
    ) -> SubtreeCost {
        let db = self.truth.db();
        let sc = match &**plan {
            Plan::Scan { qt, op } => scan_cost(
                db,
                query,
                *qt as usize,
                *op,
                &*self.truth,
                &self.profile.weights,
            ),
            Plan::Join {
                op, left, right, ..
            } => {
                let lc = self.subtree_works(query, left, out);
                let rc = self.subtree_works(query, right, out);
                join_cost(
                    db,
                    query,
                    *op,
                    left,
                    &lc,
                    right,
                    &rc,
                    &*self.truth,
                    &self.profile.weights,
                )
            }
        };
        out.push((plan.clone(), sc.work));
        sc
    }

    /// Applies the timeout policy to a (cached or fresh) run.
    fn outcome_of(
        &self,
        run: CachedRun,
        timeout_secs: Option<f64>,
        from_cache: bool,
    ) -> ExecOutcome {
        let timed_out = timeout_secs.is_some_and(|b| run.latency_secs > b);
        ExecOutcome {
            latency_secs: if timed_out {
                timeout_secs.expect("timed_out implies budget")
            } else {
                run.latency_secs
            },
            work: run.work,
            timed_out,
            from_cache,
            fault: None,
        }
    }

    /// Deterministic mean-one log-normal noise for one (query, plan) key.
    ///
    /// The plan half of the key comes from [`latency_hash`], **not**
    /// [`Plan::fingerprint`]: the noise draw is part of the recorded
    /// simulation (benchmark baselines, learning curves), so it is
    /// pinned to a frozen structural encoding. The planner-facing
    /// fingerprint is free to evolve for hot-path reasons (it became
    /// compositional and construction-cached in PR 5) without
    /// re-rolling every simulated latency in the workload.
    fn noise_factor(&self, key: (u64, u64)) -> f64 {
        let sigma = self.profile.noise_sigma;
        if sigma <= 0.0 {
            return 1.0;
        }
        // Two splitmix64 draws -> Box-Muller standard normal.
        fn splitmix(mut z: u64) -> u64 {
            z = z.wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        let a = splitmix(key.0 ^ key.1.rotate_left(17));
        let b = splitmix(a ^ key.1);
        let to_unit = |x: u64| ((x >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64);
        let (u1, u2) = (to_unit(a), to_unit(b));
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        // Subtract σ²/2 so E[noise] = 1.
        (sigma * z - sigma * sigma / 2.0).exp()
    }
}

/// Frozen structural plan hash feeding the latency-noise key
/// ([`Plan::canonical_hash`] — the original fingerprint encoding, never
/// changed), so every recorded simulated latency (benchmark baselines,
/// learning curves, timeout budgets derived from them) survives
/// fingerprint-algorithm evolution. O(plan) per execution call (cache
/// misses in `execute`, every labeled run in `execute_labeled`) — off
/// the planners' per-candidate hot paths.
fn latency_hash(plan: &Plan) -> u64 {
    plan.canonical_hash()
}

#[cfg(test)]
mod tests {
    use super::*;
    use balsa_query::workloads::job_workload;
    use balsa_query::{JoinOp, ScanOp, TableMask};
    use balsa_storage::{mini_imdb, DataGenConfig};

    fn fixture() -> (Arc<Database>, balsa_query::Workload) {
        let db = Arc::new(mini_imdb(DataGenConfig {
            scale: 0.05,
            ..Default::default()
        }));
        let w = job_workload(db.catalog(), 7);
        (db, w)
    }

    /// A simple valid left-deep plan: greedy connected order, hash joins.
    fn left_deep_hash(q: &Query) -> Arc<Plan> {
        let mut plan = Plan::scan(0, ScanOp::Seq);
        let mut remaining: Vec<usize> = (1..q.num_tables()).collect();
        while !remaining.is_empty() {
            let pos = remaining
                .iter()
                .position(|&t| q.connected(plan.mask(), TableMask::single(t)))
                .expect("connected join graph");
            let t = remaining.remove(pos);
            plan = Plan::join(JoinOp::Hash, plan, Plan::scan(t, ScanOp::Seq));
        }
        plan
    }

    /// Censoring boundary property, across the workload: a budget
    /// *exactly* equal to the true latency completes (censoring is
    /// strictly `latency > budget`), and a budget one ulp below
    /// censors at the budget — with bit-identical verdicts and
    /// latencies on the uncached and cached paths. Guards the replay
    /// path from drifting off the fresh path at the boundary, where a
    /// `>=` vs `>` mismatch would flip labels between cache states.
    #[test]
    fn budget_at_exact_latency_is_consistent_across_cache_paths() {
        let (db, w) = fixture();
        for q in w.queries.iter().take(12) {
            let plan = left_deep_hash(q);
            let l = ExecutionEnv::postgres_sim(db.clone())
                .execute(q, &plan, None)
                .unwrap()
                .latency_secs;

            // budget == L, uncached: completes at exactly L.
            let env = ExecutionEnv::postgres_sim(db.clone());
            let (out, labels) = env.execute_labeled(q, &plan, Some(l)).unwrap();
            assert!(!out.from_cache && !out.timed_out, "{}", q.name);
            assert_eq!(out.latency_secs.to_bits(), l.to_bits());
            let root = |ls: &[SubtreeObs]| {
                ls.iter()
                    .find(|s| s.plan.fingerprint() == plan.fingerprint())
                    .expect("root labeled")
                    .clone()
            };
            assert!(
                !root(&labels).censored,
                "{}: root censored at budget==L",
                q.name
            );

            // budget == L, cached replay: identical verdict and bits.
            let (hit, labels2) = env.execute_labeled(q, &plan, Some(l)).unwrap();
            assert!(hit.from_cache && !hit.timed_out, "{}", q.name);
            assert_eq!(hit.latency_secs.to_bits(), l.to_bits());
            assert!(!root(&labels2).censored);
            assert_eq!(
                root(&labels).latency_secs.to_bits(),
                root(&labels2).latency_secs.to_bits()
            );

            // One ulp below L: both paths censor at the budget.
            let below = f64::from_bits(l.to_bits() - 1);
            let fresh = ExecutionEnv::postgres_sim(db.clone());
            let (cut, cut_labels) = fresh.execute_labeled(q, &plan, Some(below)).unwrap();
            assert!(!cut.from_cache && cut.timed_out, "{}", q.name);
            assert_eq!(cut.latency_secs.to_bits(), below.to_bits());
            assert!(root(&cut_labels).censored);
            // Killed runs are never cached; seed the cache with the
            // completed run, then replay under the same sub-L budget.
            fresh.execute(q, &plan, None).unwrap();
            let (cut2, cut2_labels) = fresh.execute_labeled(q, &plan, Some(below)).unwrap();
            assert!(cut2.from_cache && cut2.timed_out, "{}", q.name);
            assert_eq!(cut2.latency_secs.to_bits(), below.to_bits());
            assert!(root(&cut2_labels).censored);
            assert_eq!(
                root(&cut_labels).latency_secs.to_bits(),
                root(&cut2_labels).latency_secs.to_bits()
            );
        }
    }

    #[test]
    fn execute_returns_finite_positive_latency() {
        let (db, w) = fixture();
        let env = ExecutionEnv::postgres_sim(db);
        let q = &w.queries[0];
        let out = env.execute(q, &left_deep_hash(q), None).unwrap();
        assert!(out.latency_secs.is_finite() && out.latency_secs > 0.0);
        assert!(out.work > 0.0);
        assert!(!out.timed_out && !out.from_cache);
        assert!(env.elapsed_secs() >= out.latency_secs * 0.99);
    }

    #[test]
    fn reissued_fingerprint_hits_cache_and_charges_no_time() {
        let (db, w) = fixture();
        let env = ExecutionEnv::postgres_sim(db);
        let q = &w.queries[0];
        let p = left_deep_hash(q);
        let first = env.execute(q, &p, None).unwrap();
        let elapsed = env.elapsed_secs();
        // Structurally identical plan, fresh allocation: same fingerprint.
        let again = env.execute(q, &left_deep_hash(q), None).unwrap();
        assert!(again.from_cache);
        assert_eq!(again.latency_secs, first.latency_secs);
        assert_eq!(
            env.elapsed_secs(),
            elapsed,
            "cache hit must not advance clock"
        );
        assert_eq!(env.cache_stats(), (1, 1));
    }

    #[test]
    fn over_budget_plan_early_terminates() {
        let (db, w) = fixture();
        let env = ExecutionEnv::postgres_sim(db.clone());
        let q = &w.queries[0];
        let p = left_deep_hash(q);
        let full = env.execute(q, &p, None).unwrap();
        let budget = full.latency_secs / 2.0;
        // Fresh env so the run is not cached.
        let env2 = ExecutionEnv::postgres_sim(db);
        let cut = env2.execute(q, &p, Some(budget)).unwrap();
        assert!(cut.timed_out);
        assert_eq!(cut.latency_secs, budget);
        // Only the budget's worth of time elapsed.
        assert!((env2.elapsed_secs() - budget).abs() < 1e-9);
    }

    #[test]
    fn timed_out_run_is_not_cached() {
        let (db, w) = fixture();
        let env = ExecutionEnv::postgres_sim(db.clone());
        let q = &w.queries[0];
        let p = left_deep_hash(q);
        let full = ExecutionEnv::postgres_sim(db).execute(q, &p, None).unwrap();
        let budget = full.latency_secs / 2.0;
        let cut = env.execute(q, &p, Some(budget)).unwrap();
        assert!(cut.timed_out);
        // The killed run observed nothing beyond the budget: a reissue
        // must re-execute (cache miss) and pay the full latency.
        let redo = env.execute(q, &p, None).unwrap();
        assert!(!redo.from_cache);
        assert_eq!(redo.latency_secs, full.latency_secs);
        assert_eq!(env.cache_stats(), (0, 2));
        assert!((env.elapsed_secs() - (budget + full.latency_secs)).abs() < 1e-9);
    }

    #[test]
    fn generous_budget_does_not_time_out() {
        let (db, w) = fixture();
        let env = ExecutionEnv::postgres_sim(db);
        let q = &w.queries[0];
        let out = env.execute(q, &left_deep_hash(q), Some(1e12)).unwrap();
        assert!(!out.timed_out);
    }

    #[test]
    fn commdb_hint_space_is_left_deep_only() {
        let (db, w) = fixture();
        let env = ExecutionEnv::commdb_sim(db);
        let q = w
            .queries
            .iter()
            .find(|q| q.num_tables() >= 4)
            .expect("JOB-like has 4+ table queries");
        let ld = left_deep_hash(q);
        assert!(env.accepts(&ld));
        // Rotate the top join to make the plan bushy (right subtree is a
        // join), if the graph allows the orientation; the shape test is
        // structural so connectivity does not matter for accepts().
        if let Plan::Join {
            op, left, right, ..
        } = &*ld
        {
            let bushy = Plan::join(*op, right.clone(), left.clone());
            if !bushy.is_left_deep() {
                assert!(!env.accepts(&bushy));
                assert_eq!(
                    env.validate(q, &bushy).unwrap_err(),
                    EnvError::BushyHintRejected
                );
                assert_eq!(
                    env.execute(q, &bushy, None).unwrap_err(),
                    ExecError::Env(EnvError::BushyHintRejected)
                );
            }
        }
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let (db, w) = fixture();
        let env = ExecutionEnv::postgres_sim(db);
        let q = &w.queries[0];
        // Covers only one table.
        let partial = Plan::scan(0, ScanOp::Seq);
        let err = env.execute(q, &partial, None).unwrap_err();
        assert!(matches!(err, ExecError::Env(EnvError::InvalidPlan(_))));
        assert!(!err.is_retryable(), "invalid plans are fatal, not flaky");
    }

    #[test]
    fn labeled_execution_covers_all_subtrees_and_root_matches() {
        let (db, w) = fixture();
        let env = ExecutionEnv::postgres_sim(db);
        let q = &w.queries[0];
        let p = left_deep_hash(q);
        let (out, labels) = env.execute_labeled(q, &p, None).unwrap();
        assert_eq!(labels.len(), p.subplans().len());
        // Post-order: root last, and its label equals the observed latency.
        let root = labels.last().unwrap();
        assert_eq!(root.plan.fingerprint(), p.fingerprint());
        assert!((root.latency_secs - out.latency_secs).abs() < 1e-12);
        assert!(labels.iter().all(|l| !l.censored));
        // Subtree latencies are monotone under containment: every label
        // is at most the root's (work only grows up the tree).
        for l in &labels {
            assert!(l.latency_secs <= root.latency_secs + 1e-12);
            assert!(l.latency_secs > 0.0);
        }
    }

    #[test]
    fn labeled_timeout_censors_expensive_subtrees() {
        let (db, w) = fixture();
        let q = &w.queries[0];
        let p = left_deep_hash(q);
        let full = ExecutionEnv::postgres_sim(db.clone())
            .execute(q, &p, None)
            .unwrap();
        let budget = full.latency_secs * 0.6;
        let env = ExecutionEnv::postgres_sim(db);
        let (out, labels) = env.execute_labeled(q, &p, Some(budget)).unwrap();
        assert!(out.timed_out);
        let root = labels.last().unwrap();
        assert!(root.censored, "root must be censored on timeout");
        assert_eq!(root.latency_secs, budget);
        // Censored labels sit exactly at the budget; uncensored ones below.
        for l in &labels {
            if l.censored {
                assert_eq!(l.latency_secs, budget);
            } else {
                assert!(l.latency_secs <= budget);
            }
        }
        // Cheap subtrees (single scans) finished within the budget.
        assert!(labels.iter().any(|l| !l.censored));
    }

    /// Satellite: the timeout boundary is pinned. A budget **exactly
    /// equal** to the true latency does not censor (`timed_out` uses a
    /// strict `latency > budget`), and the cached path — which
    /// re-derives the outcome from the recorded run — agrees with the
    /// uncached path bit-for-bit at and around the boundary.
    #[test]
    fn budget_equal_to_latency_is_consistent_on_cached_and_uncached_paths() {
        let (db, w) = fixture();
        for q in w.queries.iter().take(5) {
            let p = left_deep_hash(q);
            let full = ExecutionEnv::postgres_sim(db.clone())
                .execute(q, &p, None)
                .unwrap();
            let exact = full.latency_secs;

            // Uncached path, budget exactly the latency: completes.
            let env = ExecutionEnv::postgres_sim(db.clone());
            let at = env.execute(q, &p, Some(exact)).unwrap();
            assert!(!at.timed_out, "budget == latency must not censor");
            assert_eq!(at.latency_secs, exact);
            assert!(!at.from_cache);

            // Completed run is cached; the cached re-derivation at the
            // same boundary must agree exactly.
            let cached_at = env.execute(q, &p, Some(exact)).unwrap();
            assert!(cached_at.from_cache);
            assert!(!cached_at.timed_out);
            assert_eq!(cached_at.latency_secs, exact);

            // One ULP below the latency censors — on both paths.
            let below = f64::from_bits(exact.to_bits() - 1);
            let cached_below = env.execute(q, &p, Some(below)).unwrap();
            assert!(cached_below.from_cache && cached_below.timed_out);
            assert_eq!(cached_below.latency_secs, below);
            let fresh_below = ExecutionEnv::postgres_sim(db.clone())
                .execute(q, &p, Some(below))
                .unwrap();
            assert!(!fresh_below.from_cache && fresh_below.timed_out);
            assert_eq!(fresh_below.latency_secs, below);
        }
    }

    fn chaos_cfg(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            transient: 0.15,
            crash: 0.1,
            spike: 0.1,
            hang: 0.1,
            ..FaultConfig::default()
        }
    }

    /// Executes every fixture query on a fresh env with the given fault
    /// config, collecting a signature of each result.
    fn run_all(db: &Arc<Database>, w: &balsa_query::Workload, cfg: FaultConfig) -> Vec<String> {
        let env = ExecutionEnv::postgres_sim(db.clone()).with_faults(cfg);
        w.queries
            .iter()
            .map(|q| {
                let p = left_deep_hash(q);
                match env.execute(q, &p, Some(1.0)) {
                    Ok(o) => format!(
                        "ok {} {} {:?}",
                        o.latency_secs.to_bits(),
                        o.timed_out,
                        o.fault
                    ),
                    Err(e) => format!("err {e}"),
                }
            })
            .collect()
    }

    #[test]
    fn zero_fault_config_is_bit_identical_to_no_injector() {
        let (db, w) = fixture();
        let clean = run_all(&db, &w, FaultConfig::default());
        let env = ExecutionEnv::postgres_sim(db.clone());
        let reference: Vec<String> = w
            .queries
            .iter()
            .map(|q| {
                let p = left_deep_hash(q);
                let o = env.execute(q, &p, Some(1.0)).unwrap();
                format!(
                    "ok {} {} {:?}",
                    o.latency_secs.to_bits(),
                    o.timed_out,
                    o.fault
                )
            })
            .collect();
        assert_eq!(clean, reference);
    }

    #[test]
    fn chaos_is_reproducible_and_seed_sensitive() {
        let (db, w) = fixture();
        let a = run_all(&db, &w, chaos_cfg(7));
        let b = run_all(&db, &w, chaos_cfg(7));
        assert_eq!(a, b, "same chaos seed must reproduce bit-for-bit");
        let c = run_all(&db, &w, chaos_cfg(8));
        assert_ne!(a, c, "different chaos seed must differ somewhere");
        // With these rates over the whole workload, chaos actually bit.
        assert!(
            a.iter().any(|s| s.starts_with("err") || s.contains("Some")),
            "chaos config injected nothing: {a:?}"
        );
    }

    #[test]
    fn hang_with_budget_is_guaranteed_timeout_and_uncached() {
        let (db, w) = fixture();
        let cfg = FaultConfig {
            seed: 1,
            hang: 1.0,
            ..FaultConfig::default()
        };
        let env = ExecutionEnv::postgres_sim(db).with_faults(cfg);
        let q = &w.queries[0];
        let p = left_deep_hash(q);
        let out = env.execute(q, &p, Some(1e12)).unwrap();
        assert!(out.timed_out && out.fault == Some(FaultKind::Hang));
        assert_eq!(out.latency_secs, 1e12);
        // Nothing was cached: a re-execution draws a fresh hang, not a
        // cached replay.
        assert_eq!(env.cache_stats(), (0, 1));
        // Without a budget the watchdog reports a retryable kill after
        // the full latency.
        let err = env.execute(q, &p, None).unwrap_err();
        assert!(err.is_retryable());
        assert!(matches!(
            err,
            ExecError::Fault {
                kind: FaultKind::Hang,
                ..
            }
        ));
    }

    #[test]
    fn spike_scales_latency_and_labels_consistently() {
        let (db, w) = fixture();
        let q = &w.queries[0];
        let p = left_deep_hash(q);
        let clean = ExecutionEnv::postgres_sim(db.clone())
            .execute(q, &p, None)
            .unwrap();
        let cfg = FaultConfig {
            seed: 1,
            spike: 1.0,
            spike_factor: 3.0,
            ..FaultConfig::default()
        };
        let env = ExecutionEnv::postgres_sim(db).with_faults(cfg);
        let (out, labels) = env.execute_labeled(q, &p, None).unwrap();
        assert_eq!(out.fault, Some(FaultKind::LatencySpike(3.0)));
        assert!((out.latency_secs - clean.latency_secs * 3.0).abs() < 1e-12);
        let root = labels.last().unwrap();
        assert!(
            (root.latency_secs - out.latency_secs).abs() < 1e-9,
            "spiked root label must match the spiked outcome"
        );
        // The spiked observation was not cached as truth.
        assert_eq!(env.cache_stats().0, 0);
    }

    #[test]
    fn transient_and_crash_report_honest_wasted_wall() {
        let (db, w) = fixture();
        let q = &w.queries[0];
        let p = left_deep_hash(q);
        let clean = ExecutionEnv::postgres_sim(db.clone())
            .execute(q, &p, None)
            .unwrap();
        for (cfg, expect_overhead) in [
            (
                FaultConfig {
                    seed: 2,
                    transient: 1.0,
                    ..FaultConfig::default()
                },
                false,
            ),
            (
                FaultConfig {
                    seed: 2,
                    crash: 1.0,
                    crash_restart_secs: 0.25,
                    ..FaultConfig::default()
                },
                true,
            ),
        ] {
            let env = ExecutionEnv::postgres_sim(db.clone()).with_faults(cfg);
            let err = env.execute(q, &p, None).unwrap_err();
            let ExecError::Fault {
                ran_secs,
                overhead_secs,
                ..
            } = err
            else {
                panic!("expected fault, got {err:?}");
            };
            assert!(ran_secs > 0.0 && ran_secs < clean.latency_secs);
            assert_eq!(overhead_secs, if expect_overhead { 0.25 } else { 0.0 });
            // The wasted wall was charged to the clock.
            assert!((env.elapsed_secs() - (ran_secs + overhead_secs)).abs() < 1e-12);
        }
    }

    #[test]
    fn retry_recovers_from_transients_within_attempt_budget() {
        let (db, w) = fixture();
        // transient=0.5: over many (query, attempt) draws some first
        // attempts fault and some retries clear.
        let cfg = FaultConfig {
            seed: 5,
            transient: 0.5,
            ..FaultConfig::default()
        };
        let env = ExecutionEnv::postgres_sim(db.clone()).with_faults(cfg);
        let policy = RetryPolicy {
            max_attempts: 6,
            ..RetryPolicy::default()
        };
        let mut recovered = 0;
        for q in &w.queries {
            let p = left_deep_hash(q);
            let report = env
                .execute_labeled_retry_uncharged(q, &p, None, &policy)
                .unwrap();
            let (outcome, labels) = report.outcome.expect("censor policy keeps every sample");
            assert!(!labels.is_empty());
            if report.stats.exhausted_censored == 1 {
                // All six attempts faulted — the sample survives as a
                // censored lower bound, checked in detail elsewhere.
                assert!(outcome.timed_out);
                continue;
            }
            if report.attempts > 1 {
                recovered += 1;
                assert!(report.stats.retries >= 1);
                assert!(report.stats.backoff_secs_charged > 0.0);
                assert!(
                    report.exec_secs > outcome.latency_secs,
                    "wasted attempts must add wall"
                );
            }
            // The surviving outcome is the clean latency — faults never
            // corrupt a successful attempt's observation.
            let clean = ExecutionEnv::postgres_sim(db.clone())
                .execute(q, &p, None)
                .unwrap();
            assert_eq!(outcome.latency_secs, clean.latency_secs);
        }
        assert!(recovered > 0, "no query needed a retry — rates too low");
    }

    #[test]
    fn exhausted_retries_censor_at_kill_point_or_drop() {
        let (db, w) = fixture();
        let cfg = FaultConfig {
            seed: 3,
            transient: 1.0,
            ..FaultConfig::default()
        };
        let env = ExecutionEnv::postgres_sim(db.clone()).with_faults(cfg);
        let q = &w.queries[0];
        let p = left_deep_hash(q);
        let clean = ExecutionEnv::postgres_sim(db.clone())
            .execute(q, &p, None)
            .unwrap();

        let censor = RetryPolicy {
            max_attempts: 3,
            exhausted: ExhaustedPolicy::Censor,
            ..RetryPolicy::default()
        };
        let report = env
            .execute_labeled_retry_uncharged(q, &p, None, &censor)
            .unwrap();
        assert_eq!(report.attempts, 3);
        assert_eq!(report.stats.faults_injected, 3);
        assert_eq!(report.stats.retries, 2);
        assert_eq!(report.stats.exhausted_censored, 1);
        let (outcome, labels) = report.outcome.expect("censor policy keeps the sample");
        assert!(outcome.timed_out, "exhausted sample is timeout-censored");
        // Censored at the observed kill wall — an honest lower bound,
        // strictly below the true latency (never at an unevidenced
        // budget).
        assert!(outcome.latency_secs > 0.0 && outcome.latency_secs < clean.latency_secs);
        let root = labels.last().unwrap();
        assert!(root.censored);
        assert_eq!(root.latency_secs, outcome.latency_secs);

        let drop_policy = RetryPolicy {
            max_attempts: 3,
            exhausted: ExhaustedPolicy::Drop,
            ..RetryPolicy::default()
        };
        let report = env
            .execute_labeled_retry_uncharged(q, &p, None, &drop_policy)
            .unwrap();
        assert!(report.outcome.is_none());
        assert_eq!(report.stats.abandoned, 1);
        assert!(report.exec_secs > 0.0, "dropped attempts still cost wall");
    }

    #[test]
    fn retry_without_injector_matches_plain_labeled_execution() {
        let (db, w) = fixture();
        let q = &w.queries[0];
        let p = left_deep_hash(q);
        let env_a = ExecutionEnv::postgres_sim(db.clone());
        let env_b = ExecutionEnv::postgres_sim(db);
        let (plain, plain_labels) = env_a.execute_labeled_uncharged(q, &p, Some(1.0)).unwrap();
        let report = env_b
            .execute_labeled_retry_uncharged(q, &p, Some(1.0), &RetryPolicy::default())
            .unwrap();
        let (retried, retry_labels) = report.outcome.unwrap();
        assert_eq!(plain.latency_secs.to_bits(), retried.latency_secs.to_bits());
        assert_eq!(plain.timed_out, retried.timed_out);
        assert_eq!(report.attempts, 1);
        assert_eq!(report.stats, ResilienceStats::default());
        assert_eq!(
            report.exec_secs.to_bits(),
            if retried.from_cache {
                0f64.to_bits()
            } else {
                retried.latency_secs.to_bits()
            }
        );
        assert_eq!(plain_labels.len(), retry_labels.len());
        for (a, b) in plain_labels.iter().zip(&retry_labels) {
            assert_eq!(a.latency_secs.to_bits(), b.latency_secs.to_bits());
            assert_eq!(a.censored, b.censored);
        }
    }

    #[test]
    fn snapshot_restore_roundtrips_cache_counters_and_clock() {
        let (db, w) = fixture();
        let env = ExecutionEnv::postgres_sim(db.clone());
        for q in w.queries.iter().take(4) {
            let p = left_deep_hash(q);
            env.execute(q, &p, None).unwrap();
            env.execute(q, &p, None).unwrap(); // cache hit
        }
        env.charge_raw(1.5);
        let snap = env.snapshot();
        assert_eq!(snap.entries.len(), 4);
        assert_eq!((snap.hits, snap.misses), (4, 4));

        let fresh = ExecutionEnv::postgres_sim(db);
        fresh.restore(&snap);
        assert_eq!(fresh.snapshot(), snap, "restore must round-trip exactly");
        assert_eq!(fresh.elapsed_secs().to_bits(), env.elapsed_secs().to_bits());
        // Restored cache serves hits: re-executing a snapshotted plan
        // charges no time and returns the recorded latency.
        let q = &w.queries[0];
        let p = left_deep_hash(q);
        let before = fresh.elapsed_secs();
        let out = fresh.execute(q, &p, None).unwrap();
        assert!(out.from_cache);
        assert_eq!(fresh.elapsed_secs(), before);
    }

    #[test]
    fn latency_is_deterministic_across_envs() {
        let (db, w) = fixture();
        let q = &w.queries[0];
        let p = left_deep_hash(q);
        let l1 = ExecutionEnv::postgres_sim(db.clone())
            .execute(q, &p, None)
            .unwrap()
            .latency_secs;
        let l2 = ExecutionEnv::postgres_sim(db)
            .execute(q, &p, None)
            .unwrap()
            .latency_secs;
        assert_eq!(l1, l2, "same plan+query must time identically across envs");
    }
}
