//! The execution environment: plans in, latencies out.
//!
//! [`ExecutionEnv::execute`] is the single entry point the learning loop
//! (and today, the planners' evaluation harness) uses to "run" a plan:
//!
//! 1. the plan is validated against the engine's hint space
//!    ([`EngineProfile::bushy_hints`]) and the query's join graph;
//! 2. the **plan cache** (§7 of the paper) is consulted by structural
//!    [`Plan::fingerprint`] — a reissued plan returns its recorded
//!    latency without re-execution and without advancing the clock;
//! 3. otherwise the plan's work is charged via
//!    [`balsa_cost::physical_cost`] evaluated on **true** cardinalities
//!    ([`TrueCards`]), converted to seconds with the profile's
//!    calibration constants plus deterministic log-normal noise;
//! 4. **timeouts** (§4.3) early-terminate: when the latency exceeds the
//!    caller's budget, the outcome reports `timed_out` and only the
//!    budget's worth of simulated time elapses.
//!
//! All simulated time flows into an internal [`SimClock`], providing the
//! x-axis of the paper's learning-curve figures.

use crate::profile::EngineProfile;
use crate::sim_clock::SimClock;
use crate::truecard::{query_key, TrueCards};
use balsa_cost::{join_cost, physical_cost, scan_cost, SubtreeCost};
use balsa_query::{Plan, Query};
use balsa_storage::Database;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Why the environment refused to execute a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvError {
    /// The engine only accepts left-deep hints (CommDbSim, §8.2) and the
    /// plan is bushy.
    BushyHintRejected,
    /// The plan does not cover exactly the query's tables, or joins
    /// disconnected inputs (cross products are outside the search space).
    InvalidPlan(String),
}

impl std::fmt::Display for EnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvError::BushyHintRejected => {
                write!(f, "engine accepts only left-deep plan hints")
            }
            EnvError::InvalidPlan(why) => write!(f, "invalid plan: {why}"),
        }
    }
}

impl std::error::Error for EnvError {}

/// Result of one (possibly cached or timed-out) plan execution.
#[derive(Debug, Clone, Copy)]
pub struct ExecOutcome {
    /// Observed latency in seconds. On timeout this equals the budget
    /// (the execution was killed there).
    pub latency_secs: f64,
    /// Abstract work the plan was charged (true-cardinality physical
    /// cost), independent of noise and timeout.
    pub work: f64,
    /// Whether the execution hit the caller's timeout budget.
    pub timed_out: bool,
    /// Whether the latency came from the plan cache (no time elapsed).
    pub from_cache: bool,
}

/// A recorded execution in the plan cache.
#[derive(Debug, Clone, Copy)]
struct CachedRun {
    latency_secs: f64,
    work: f64,
}

/// One subtree's observed latency from a labeled execution
/// ([`ExecutionEnv::execute_labeled`]) — the per-subplan experience the
/// learning loop records (§3.2's data augmentation over "each subplan
/// T' of T", with §4.3 timeout censoring).
#[derive(Debug, Clone)]
pub struct SubtreeObs {
    /// The subplan this observation labels.
    pub plan: Arc<Plan>,
    /// Observed subtree latency in seconds. When `censored`, this is the
    /// timeout budget — a *lower bound* on the true latency, because the
    /// execution was killed before the subtree finished.
    pub latency_secs: f64,
    /// Whether the label is a timeout-censored lower bound.
    pub censored: bool,
}

/// The simulated execution environment of one engine.
pub struct ExecutionEnv {
    truth: Arc<TrueCards>,
    profile: EngineProfile,
    cache: Mutex<HashMap<(u64, u64), CachedRun>>,
    clock: Mutex<SimClock>,
    hits: Mutex<u64>,
    misses: Mutex<u64>,
}

impl ExecutionEnv {
    /// Creates an environment over `db` with the given engine profile and
    /// simulated clock.
    pub fn new(db: Arc<Database>, profile: EngineProfile, clock: SimClock) -> Self {
        Self::with_truth(Arc::new(TrueCards::new(db)), profile, clock)
    }

    /// Creates an environment sharing an existing true-cardinality
    /// oracle. Separate environments (e.g. the training env and the
    /// frozen-clock evaluation env, or per-model benchmark envs) keep
    /// independent plan caches and clocks but share the expensive
    /// materialized-join memo — cardinalities are exact ground truth, so
    /// sharing never changes an observed latency.
    pub fn with_truth(truth: Arc<TrueCards>, profile: EngineProfile, clock: SimClock) -> Self {
        Self {
            truth,
            profile,
            cache: Mutex::new(HashMap::new()),
            clock: Mutex::new(clock),
            hits: Mutex::new(0),
            misses: Mutex::new(0),
        }
    }

    /// PostgresSim with the paper's default clock — the common fixture.
    pub fn postgres_sim(db: Arc<Database>) -> Self {
        Self::new(db, EngineProfile::postgres_sim(), SimClock::paper_default())
    }

    /// CommDbSim with the paper's default clock.
    pub fn commdb_sim(db: Arc<Database>) -> Self {
        Self::new(db, EngineProfile::commdb_sim(), SimClock::paper_default())
    }

    /// The engine profile in use.
    pub fn profile(&self) -> &EngineProfile {
        &self.profile
    }

    /// The true-cardinality oracle (usable as a [`balsa_card::CardEstimator`]).
    pub fn truth(&self) -> &TrueCards {
        &self.truth
    }

    /// A shareable handle to the oracle, for building sibling
    /// environments via [`ExecutionEnv::with_truth`].
    pub fn truth_arc(&self) -> Arc<TrueCards> {
        self.truth.clone()
    }

    /// The database being executed against.
    pub fn db(&self) -> &Arc<Database> {
        self.truth.db()
    }

    /// Elapsed simulated seconds on the environment's clock.
    pub fn elapsed_secs(&self) -> f64 {
        self.clock.lock().seconds()
    }

    /// Charges planning time to the clock (measured, in seconds).
    pub fn charge_planning(&self, secs: f64) {
        self.clock.lock().charge_planning(secs);
    }

    /// Charges a batch of per-query planning times run on `workers`
    /// parallel planner threads — the wall-clock a parallel planning
    /// phase actually occupies, not the serial sum (see
    /// [`SimClock::charge_planning_parallel`]).
    pub fn charge_planning_parallel(&self, secs: &[f64], workers: usize) {
        self.clock.lock().charge_planning_parallel(secs, workers);
    }

    /// Charges `steps` SGD steps of model updating to the clock.
    pub fn charge_update(&self, steps: u64) {
        self.clock.lock().charge_update(steps);
    }

    /// `(cache hits, cache misses)` of the plan cache so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        (*self.hits.lock(), *self.misses.lock())
    }

    /// Whether the engine's hint space accepts this plan shape.
    pub fn accepts(&self, plan: &Plan) -> bool {
        self.profile.bushy_hints || plan.is_left_deep()
    }

    /// Validates that `plan` is an executable join tree for `query`:
    /// covers exactly the query's tables, joins only connected inputs,
    /// and fits the engine's hint space.
    pub fn validate(&self, query: &Query, plan: &Plan) -> Result<(), EnvError> {
        if plan.mask() != query.all_mask() {
            return Err(EnvError::InvalidPlan(format!(
                "plan covers mask {:b}, query needs {:b}",
                plan.mask().0,
                query.all_mask().0
            )));
        }
        let mut disconnected = None;
        plan.visit(&mut |node| {
            if let Plan::Join { left, right, .. } = node {
                if disconnected.is_none() && !query.connected(left.mask(), right.mask()) {
                    disconnected = Some((left.mask(), right.mask()));
                }
            }
        });
        if let Some((l, r)) = disconnected {
            return Err(EnvError::InvalidPlan(format!(
                "cross product between masks {:b} and {:b}",
                l.0, r.0
            )));
        }
        if !self.accepts(plan) {
            return Err(EnvError::BushyHintRejected);
        }
        Ok(())
    }

    /// Executes `plan` for `query` with an optional timeout budget in
    /// seconds, returning the observed outcome.
    ///
    /// Timing model: `latency = startup + work · time_per_work · noise`,
    /// where `work` is [`balsa_cost::physical_cost`] on true
    /// cardinalities and `noise` is a deterministic mean-one log-normal
    /// keyed by (query, plan fingerprint). Cache hits return the recorded
    /// latency and charge no simulated time; fresh executions charge
    /// `min(latency, budget)` to the clock.
    pub fn execute(
        &self,
        query: &Query,
        plan: &Plan,
        timeout_secs: Option<f64>,
    ) -> Result<ExecOutcome, EnvError> {
        let outcome = self.execute_uncharged(query, plan, timeout_secs)?;
        // Early termination: only the budget's worth of time elapses.
        if !outcome.from_cache {
            self.clock.lock().charge_executions(&[outcome.latency_secs]);
        }
        Ok(outcome)
    }

    /// [`ExecutionEnv::execute`] without the clock charge — the building
    /// block for running a batch of executions on worker threads and
    /// then charging the batch's *parallel makespan* in one
    /// [`ExecutionEnv::charge_execution_batch`] call, the way
    /// `charge_planning_parallel` accounts a parallel planning phase.
    /// The caller must charge every non-cached outcome's
    /// `latency_secs`; cache hits cost no simulated time, as in
    /// `execute`.
    pub fn execute_uncharged(
        &self,
        query: &Query,
        plan: &Plan,
        timeout_secs: Option<f64>,
    ) -> Result<ExecOutcome, EnvError> {
        self.validate(query, plan)?;
        let key = (query_key(query), plan.fingerprint());

        if let Some(run) = self.cache.lock().get(&key).copied() {
            *self.hits.lock() += 1;
            return Ok(self.outcome_of(run, timeout_secs, true));
        }

        let work = physical_cost(
            self.truth.db(),
            query,
            plan,
            &*self.truth,
            &self.profile.weights,
            None,
        );
        let noise = self.noise_factor((key.0, latency_hash(plan)));
        let latency_secs = self.profile.startup_secs + work * self.profile.time_per_work * noise;
        let run = CachedRun { latency_secs, work };
        *self.misses.lock() += 1;

        let outcome = self.outcome_of(run, timeout_secs, false);
        // A killed execution only observes that latency exceeded the
        // budget — caching the full latency would let a tiny-budget probe
        // read it for free on reissue. Only completed runs are recorded.
        if !outcome.timed_out {
            self.cache.lock().insert(key, run);
        }
        Ok(outcome)
    }

    /// Charges a batch of execution latencies gathered from
    /// [`ExecutionEnv::execute_uncharged`] runs as one parallel phase:
    /// the engine's intra-query parallelism spreads the total work, but
    /// the phase can never finish before its longest run (see
    /// [`SimClock::charge_executions`]).
    pub fn charge_execution_batch(&self, latencies: &[f64]) {
        self.clock.lock().charge_executions(latencies);
    }

    /// Executes `plan` like [`ExecutionEnv::execute`] and additionally
    /// returns one labeled observation per subtree (post-order, root
    /// last) — the engine-side feedback of the learning loop.
    ///
    /// Each subtree is charged the same timing model as the whole plan
    /// (its true-cardinality work, the profile's calibration, and the
    /// run's noise factor), so the root observation equals the plan's
    /// uncensored latency. When the run times out at budget `b`, every
    /// subtree whose latency exceeds `b` is reported as `latency = b`
    /// with `censored = true` — a lower bound, exactly what the killed
    /// execution observed. Labels are deterministic and cost no extra
    /// simulated time beyond what `execute` charges.
    pub fn execute_labeled(
        &self,
        query: &Query,
        plan: &Arc<Plan>,
        timeout_secs: Option<f64>,
    ) -> Result<(ExecOutcome, Vec<SubtreeObs>), EnvError> {
        let outcome = self.execute(query, plan, timeout_secs)?;
        Ok((outcome, self.subtree_labels(query, plan, timeout_secs)))
    }

    /// [`ExecutionEnv::execute_labeled`] without the clock charge — see
    /// [`ExecutionEnv::execute_uncharged`] for the batch-charging
    /// contract.
    pub fn execute_labeled_uncharged(
        &self,
        query: &Query,
        plan: &Arc<Plan>,
        timeout_secs: Option<f64>,
    ) -> Result<(ExecOutcome, Vec<SubtreeObs>), EnvError> {
        let outcome = self.execute_uncharged(query, plan, timeout_secs)?;
        Ok((outcome, self.subtree_labels(query, plan, timeout_secs)))
    }

    /// One observation per subtree of `plan` (post-order, root last),
    /// timed with the run's noise factor and censored at the budget.
    fn subtree_labels(
        &self,
        query: &Query,
        plan: &Arc<Plan>,
        timeout_secs: Option<f64>,
    ) -> Vec<SubtreeObs> {
        let noise = self.noise_factor((query_key(query), latency_hash(plan)));
        let mut works: Vec<(Arc<Plan>, f64)> = Vec::new();
        self.subtree_works(query, plan, &mut works);
        works
            .into_iter()
            .map(|(sub, work)| {
                let raw = self.profile.startup_secs + work * self.profile.time_per_work * noise;
                let censored = timeout_secs.is_some_and(|b| raw > b);
                SubtreeObs {
                    plan: sub,
                    latency_secs: if censored {
                        timeout_secs.expect("censored implies budget")
                    } else {
                        raw
                    },
                    censored,
                }
            })
            .collect()
    }

    /// Total true-cardinality work of every subtree of `plan`, appended
    /// post-order (children first, root last). Built from the same
    /// `scan_cost`/`join_cost` builders as [`balsa_cost::physical_cost`],
    /// so the root entry equals the work `execute` charges.
    fn subtree_works(
        &self,
        query: &Query,
        plan: &Arc<Plan>,
        out: &mut Vec<(Arc<Plan>, f64)>,
    ) -> SubtreeCost {
        let db = self.truth.db();
        let sc = match &**plan {
            Plan::Scan { qt, op } => scan_cost(
                db,
                query,
                *qt as usize,
                *op,
                &*self.truth,
                &self.profile.weights,
            ),
            Plan::Join {
                op, left, right, ..
            } => {
                let lc = self.subtree_works(query, left, out);
                let rc = self.subtree_works(query, right, out);
                join_cost(
                    db,
                    query,
                    *op,
                    left,
                    &lc,
                    right,
                    &rc,
                    &*self.truth,
                    &self.profile.weights,
                )
            }
        };
        out.push((plan.clone(), sc.work));
        sc
    }

    /// Applies the timeout policy to a (cached or fresh) run.
    fn outcome_of(
        &self,
        run: CachedRun,
        timeout_secs: Option<f64>,
        from_cache: bool,
    ) -> ExecOutcome {
        let timed_out = timeout_secs.is_some_and(|b| run.latency_secs > b);
        ExecOutcome {
            latency_secs: if timed_out {
                timeout_secs.expect("timed_out implies budget")
            } else {
                run.latency_secs
            },
            work: run.work,
            timed_out,
            from_cache,
        }
    }

    /// Deterministic mean-one log-normal noise for one (query, plan) key.
    ///
    /// The plan half of the key comes from [`latency_hash`], **not**
    /// [`Plan::fingerprint`]: the noise draw is part of the recorded
    /// simulation (benchmark baselines, learning curves), so it is
    /// pinned to a frozen structural encoding. The planner-facing
    /// fingerprint is free to evolve for hot-path reasons (it became
    /// compositional and construction-cached in PR 5) without
    /// re-rolling every simulated latency in the workload.
    fn noise_factor(&self, key: (u64, u64)) -> f64 {
        let sigma = self.profile.noise_sigma;
        if sigma <= 0.0 {
            return 1.0;
        }
        // Two splitmix64 draws -> Box-Muller standard normal.
        fn splitmix(mut z: u64) -> u64 {
            z = z.wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        let a = splitmix(key.0 ^ key.1.rotate_left(17));
        let b = splitmix(a ^ key.1);
        let to_unit = |x: u64| ((x >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64);
        let (u1, u2) = (to_unit(a), to_unit(b));
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        // Subtract σ²/2 so E[noise] = 1.
        (sigma * z - sigma * sigma / 2.0).exp()
    }
}

/// Frozen structural plan hash feeding the latency-noise key
/// ([`Plan::canonical_hash`] — the original fingerprint encoding, never
/// changed), so every recorded simulated latency (benchmark baselines,
/// learning curves, timeout budgets derived from them) survives
/// fingerprint-algorithm evolution. O(plan) per execution call (cache
/// misses in `execute`, every labeled run in `execute_labeled`) — off
/// the planners' per-candidate hot paths.
fn latency_hash(plan: &Plan) -> u64 {
    plan.canonical_hash()
}

#[cfg(test)]
mod tests {
    use super::*;
    use balsa_query::workloads::job_workload;
    use balsa_query::{JoinOp, ScanOp, TableMask};
    use balsa_storage::{mini_imdb, DataGenConfig};

    fn fixture() -> (Arc<Database>, balsa_query::Workload) {
        let db = Arc::new(mini_imdb(DataGenConfig {
            scale: 0.05,
            ..Default::default()
        }));
        let w = job_workload(db.catalog(), 7);
        (db, w)
    }

    /// A simple valid left-deep plan: greedy connected order, hash joins.
    fn left_deep_hash(q: &Query) -> Arc<Plan> {
        let mut plan = Plan::scan(0, ScanOp::Seq);
        let mut remaining: Vec<usize> = (1..q.num_tables()).collect();
        while !remaining.is_empty() {
            let pos = remaining
                .iter()
                .position(|&t| q.connected(plan.mask(), TableMask::single(t)))
                .expect("connected join graph");
            let t = remaining.remove(pos);
            plan = Plan::join(JoinOp::Hash, plan, Plan::scan(t, ScanOp::Seq));
        }
        plan
    }

    #[test]
    fn execute_returns_finite_positive_latency() {
        let (db, w) = fixture();
        let env = ExecutionEnv::postgres_sim(db);
        let q = &w.queries[0];
        let out = env.execute(q, &left_deep_hash(q), None).unwrap();
        assert!(out.latency_secs.is_finite() && out.latency_secs > 0.0);
        assert!(out.work > 0.0);
        assert!(!out.timed_out && !out.from_cache);
        assert!(env.elapsed_secs() >= out.latency_secs * 0.99);
    }

    #[test]
    fn reissued_fingerprint_hits_cache_and_charges_no_time() {
        let (db, w) = fixture();
        let env = ExecutionEnv::postgres_sim(db);
        let q = &w.queries[0];
        let p = left_deep_hash(q);
        let first = env.execute(q, &p, None).unwrap();
        let elapsed = env.elapsed_secs();
        // Structurally identical plan, fresh allocation: same fingerprint.
        let again = env.execute(q, &left_deep_hash(q), None).unwrap();
        assert!(again.from_cache);
        assert_eq!(again.latency_secs, first.latency_secs);
        assert_eq!(
            env.elapsed_secs(),
            elapsed,
            "cache hit must not advance clock"
        );
        assert_eq!(env.cache_stats(), (1, 1));
    }

    #[test]
    fn over_budget_plan_early_terminates() {
        let (db, w) = fixture();
        let env = ExecutionEnv::postgres_sim(db.clone());
        let q = &w.queries[0];
        let p = left_deep_hash(q);
        let full = env.execute(q, &p, None).unwrap();
        let budget = full.latency_secs / 2.0;
        // Fresh env so the run is not cached.
        let env2 = ExecutionEnv::postgres_sim(db);
        let cut = env2.execute(q, &p, Some(budget)).unwrap();
        assert!(cut.timed_out);
        assert_eq!(cut.latency_secs, budget);
        // Only the budget's worth of time elapsed.
        assert!((env2.elapsed_secs() - budget).abs() < 1e-9);
    }

    #[test]
    fn timed_out_run_is_not_cached() {
        let (db, w) = fixture();
        let env = ExecutionEnv::postgres_sim(db.clone());
        let q = &w.queries[0];
        let p = left_deep_hash(q);
        let full = ExecutionEnv::postgres_sim(db).execute(q, &p, None).unwrap();
        let budget = full.latency_secs / 2.0;
        let cut = env.execute(q, &p, Some(budget)).unwrap();
        assert!(cut.timed_out);
        // The killed run observed nothing beyond the budget: a reissue
        // must re-execute (cache miss) and pay the full latency.
        let redo = env.execute(q, &p, None).unwrap();
        assert!(!redo.from_cache);
        assert_eq!(redo.latency_secs, full.latency_secs);
        assert_eq!(env.cache_stats(), (0, 2));
        assert!((env.elapsed_secs() - (budget + full.latency_secs)).abs() < 1e-9);
    }

    #[test]
    fn generous_budget_does_not_time_out() {
        let (db, w) = fixture();
        let env = ExecutionEnv::postgres_sim(db);
        let q = &w.queries[0];
        let out = env.execute(q, &left_deep_hash(q), Some(1e12)).unwrap();
        assert!(!out.timed_out);
    }

    #[test]
    fn commdb_hint_space_is_left_deep_only() {
        let (db, w) = fixture();
        let env = ExecutionEnv::commdb_sim(db);
        let q = w
            .queries
            .iter()
            .find(|q| q.num_tables() >= 4)
            .expect("JOB-like has 4+ table queries");
        let ld = left_deep_hash(q);
        assert!(env.accepts(&ld));
        // Rotate the top join to make the plan bushy (right subtree is a
        // join), if the graph allows the orientation; the shape test is
        // structural so connectivity does not matter for accepts().
        if let Plan::Join {
            op, left, right, ..
        } = &*ld
        {
            let bushy = Plan::join(*op, right.clone(), left.clone());
            if !bushy.is_left_deep() {
                assert!(!env.accepts(&bushy));
                assert_eq!(
                    env.validate(q, &bushy).unwrap_err(),
                    EnvError::BushyHintRejected
                );
            }
        }
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let (db, w) = fixture();
        let env = ExecutionEnv::postgres_sim(db);
        let q = &w.queries[0];
        // Covers only one table.
        let partial = Plan::scan(0, ScanOp::Seq);
        assert!(matches!(
            env.execute(q, &partial, None),
            Err(EnvError::InvalidPlan(_))
        ));
    }

    #[test]
    fn labeled_execution_covers_all_subtrees_and_root_matches() {
        let (db, w) = fixture();
        let env = ExecutionEnv::postgres_sim(db);
        let q = &w.queries[0];
        let p = left_deep_hash(q);
        let (out, labels) = env.execute_labeled(q, &p, None).unwrap();
        assert_eq!(labels.len(), p.subplans().len());
        // Post-order: root last, and its label equals the observed latency.
        let root = labels.last().unwrap();
        assert_eq!(root.plan.fingerprint(), p.fingerprint());
        assert!((root.latency_secs - out.latency_secs).abs() < 1e-12);
        assert!(labels.iter().all(|l| !l.censored));
        // Subtree latencies are monotone under containment: every label
        // is at most the root's (work only grows up the tree).
        for l in &labels {
            assert!(l.latency_secs <= root.latency_secs + 1e-12);
            assert!(l.latency_secs > 0.0);
        }
    }

    #[test]
    fn labeled_timeout_censors_expensive_subtrees() {
        let (db, w) = fixture();
        let q = &w.queries[0];
        let p = left_deep_hash(q);
        let full = ExecutionEnv::postgres_sim(db.clone())
            .execute(q, &p, None)
            .unwrap();
        let budget = full.latency_secs * 0.6;
        let env = ExecutionEnv::postgres_sim(db);
        let (out, labels) = env.execute_labeled(q, &p, Some(budget)).unwrap();
        assert!(out.timed_out);
        let root = labels.last().unwrap();
        assert!(root.censored, "root must be censored on timeout");
        assert_eq!(root.latency_secs, budget);
        // Censored labels sit exactly at the budget; uncensored ones below.
        for l in &labels {
            if l.censored {
                assert_eq!(l.latency_secs, budget);
            } else {
                assert!(l.latency_secs <= budget);
            }
        }
        // Cheap subtrees (single scans) finished within the budget.
        assert!(labels.iter().any(|l| !l.censored));
    }

    #[test]
    fn latency_is_deterministic_across_envs() {
        let (db, w) = fixture();
        let q = &w.queries[0];
        let p = left_deep_hash(q);
        let l1 = ExecutionEnv::postgres_sim(db.clone())
            .execute(q, &p, None)
            .unwrap()
            .latency_secs;
        let l2 = ExecutionEnv::postgres_sim(db)
            .execute(q, &p, None)
            .unwrap()
            .latency_secs;
        assert_eq!(l1, l2, "same plan+query must time identically across envs");
    }
}
