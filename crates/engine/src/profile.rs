//! Engine profiles: the two execution environments of §8.1.

use balsa_cost::OpWeights;

/// Calibration of one simulated execution engine.
#[derive(Debug, Clone, Copy)]
pub struct EngineProfile {
    /// Engine name used in reports.
    pub name: &'static str,
    /// Per-operator work weights.
    pub weights: OpWeights,
    /// Whether injected plan hints may be bushy. PostgreSQL's
    /// pg_hint_plan accepts arbitrary shapes; CommDB "allows a much
    /// smaller search space ... by not exposing bushy hints" (§8.2).
    pub bushy_hints: bool,
    /// Seconds per unit of work.
    pub time_per_work: f64,
    /// Log-space σ of the per-execution latency noise.
    pub noise_sigma: f64,
    /// Fixed per-plan startup latency in seconds.
    pub startup_secs: f64,
}

impl EngineProfile {
    /// The open-source engine stand-in (PostgreSQL-like).
    pub fn postgres_sim() -> Self {
        Self {
            name: "PostgresSim",
            weights: OpWeights::postgres_like(),
            bushy_hints: true,
            time_per_work: 4e-6,
            noise_sigma: 0.04,
            startup_secs: 0.004,
        }
    }

    /// The commercial engine stand-in: different operator economics and a
    /// left-deep-only hint space.
    pub fn commdb_sim() -> Self {
        Self {
            name: "CommDbSim",
            weights: OpWeights::commdb_like(),
            bushy_hints: false,
            time_per_work: 3e-6,
            noise_sigma: 0.04,
            startup_secs: 0.006,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ_in_the_documented_ways() {
        let pg = EngineProfile::postgres_sim();
        let cd = EngineProfile::commdb_sim();
        assert!(pg.bushy_hints);
        assert!(!cd.bushy_hints);
        assert_ne!(pg.weights, cd.weights);
        assert_ne!(pg.name, cd.name);
    }
}
