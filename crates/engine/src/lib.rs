//! # balsa-engine
//!
//! The execution environment for balsa-rs — the "real engine" role in the
//! paper's architecture (Fig 1). The paper executes plans on PostgreSQL
//! 12.5 and a commercial DBMS; this crate substitutes a deterministic
//! simulated engine that preserves the property all of Balsa's machinery
//! targets: *plan latency is driven by true cardinalities and physical
//! operator choice, and disastrous plans really are orders of magnitude
//! slower*.
//!
//! How it works:
//!
//! 1. [`TrueCards`] **actually executes** the query's joins over the
//!    synthetic data (vectorized hash joins over row-id tuples) to obtain
//!    the *true* cardinality of every table subset, memoizing both
//!    cardinalities and recently-used intermediates.
//! 2. [`ExecutionEnv`] charges the *requested* physical operators the
//!    analytic work formulas of [`balsa_cost::physical`], evaluated on
//!    those true cardinalities, and converts work to seconds with
//!    per-engine calibration constants plus deterministic log-normal
//!    noise. Because results are computed once via hash joins while cost
//!    is charged for the requested operator, "executing" a disastrous
//!    nested-loop plan is instant for us yet reports the catastrophic
//!    latency the learner must experience.
//! 3. [`EngineProfile`] models the two engines of §8.1: `PostgresSim`
//!    (bushy plan hints allowed) and `CommDbSim` (different operator
//!    economics; only left-deep hints accepted, mirroring §8.2's ~1000x
//!    smaller hint space).
//! 4. Timeouts (§4.3) and the plan cache (§7) are first-class:
//!    [`ExecutionEnv::execute`] early-terminates plans whose latency
//!    exceeds the budget and reuses cached runtimes for reissued plans.
//! 5. [`SimClock`] accounts simulated wall-clock time (execution under a
//!    parallelism factor, planning, and model-update time), providing the
//!    x-axes of the paper's learning-curve figures (Figs 7, 8).
//! 6. [`faults`] injects deterministic chaos — transient errors, engine
//!    crashes, latency spikes, hangs — from a pinned stream keyed on
//!    `(query, plan, attempt)`, and [`ExecutionEnv`] exposes retryable
//!    vs. fatal failures ([`ExecError`]) plus a bounded-retry entry
//!    point so the learning loop can be hardened against all of them
//!    without losing bit-reproducibility.

pub mod env;
pub mod exec;
pub mod faults;
pub mod profile;
pub mod sim_clock;
pub mod truecard;

pub use env::{
    EnvError, EnvSnapshot, ExecError, ExecOutcome, ExecutionEnv, RetryReport, SubtreeObs,
};
pub use faults::{
    ExhaustedPolicy, FaultConfig, FaultInjector, FaultKind, ResilienceStats, RetryPolicy,
};
pub use profile::EngineProfile;
pub use sim_clock::SimClock;
pub use truecard::{query_key, TrueCards};
