//! The true-cardinality oracle.
//!
//! [`TrueCards`] computes the exact cardinality of any connected table
//! subset of a query by actually executing joins ([`crate::exec`]).
//! Cardinalities are memoized permanently; materialized intermediates are
//! kept in a size-bounded LRU so repeated plan executions across RL
//! iterations are nearly free (the role played by the plan/result caches
//! and the Ray worker pool in the paper's §7).
//!
//! It implements [`CardEstimator`], so the engine's latency model and any
//! cost model can run directly on ground truth.
//!
//! **Concurrency.** The oracle is `Sync`: the permanent cardinality memo
//! and the LRU of materialized intermediates sit behind separate locks,
//! and no lock is held while joins execute, so first-touch
//! materializations for different queries proceed in parallel.
//! Cardinalities are exact and permanent, so concurrent training
//! executions read the same values in any interleaving; only the
//! *decomposition route* chosen for a mask (and hence which overflow cap
//! is hit first on overflow-edge queries) can depend on what the LRU
//! currently holds, which affects cache efficiency, never cached values.

use crate::exec::{hash_join, scan_base, Intermediate, Overflow, MAX_INTERMEDIATE_ROWS};
use balsa_card::CardEstimator;
use balsa_query::{Query, TableMask};
use balsa_storage::Database;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Budget (in row-id slots) for cached intermediates.
const INTERMEDIATE_BUDGET_SLOTS: usize = 24_000_000;

/// Key identifying a query within the oracle's caches. Uses the query id
/// and an FNV hash of the name, so distinct workloads can share an oracle.
/// Shared with the execution environment's plan cache and the experience
/// buffer's (query, plan-fingerprint) dedup keys.
pub fn query_key(q: &Query) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in q.name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h ^ ((q.id as u64) << 1)
}

struct CacheEntry {
    inter: Arc<Intermediate>,
    stamp: u64,
}

struct Caches {
    inters: HashMap<(u64, TableMask), CacheEntry>,
    slots_used: usize,
    tick: u64,
    /// Statistics: materializations performed (cache misses).
    misses: u64,
    hits: u64,
}

/// Ground-truth cardinalities via actual execution, with caching.
pub struct TrueCards {
    db: Arc<Database>,
    /// Permanent cardinality memo — read-mostly, so it gets its own lock
    /// and the hot `true_card` fast path never contends with the LRU
    /// bookkeeping below.
    cards: Mutex<HashMap<(u64, TableMask), f64>>,
    caches: Mutex<Caches>,
}

impl TrueCards {
    /// Creates an oracle over `db`.
    pub fn new(db: Arc<Database>) -> Self {
        Self {
            db,
            cards: Mutex::new(HashMap::new()),
            caches: Mutex::new(Caches {
                inters: HashMap::new(),
                slots_used: 0,
                tick: 0,
                misses: 0,
                hits: 0,
            }),
        }
    }

    /// The database this oracle executes against.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// `(cache hits, materializations)` so far — used by efficiency tests.
    pub fn cache_stats(&self) -> (u64, u64) {
        let c = self.caches.lock();
        (c.hits, c.misses)
    }

    /// True cardinality of the join of `mask` (filters applied).
    ///
    /// # Panics
    /// Panics if `mask` is empty or induces a disconnected subgraph
    /// (cross products are outside the search space).
    pub fn true_card(&self, query: &Query, mask: TableMask) -> u64 {
        assert!(!mask.is_empty(), "empty mask");
        let qk = query_key(query);
        if let Some(&c) = self.cards.lock().get(&(qk, mask)) {
            return c as u64;
        }
        match self.materialize(query, qk, mask) {
            Ok(inter) => inter.len() as u64,
            // Overflowed intermediates are treated as "huge": the exact
            // value beyond the cap does not change any planning decision.
            Err(Overflow) => MAX_INTERMEDIATE_ROWS as u64,
        }
    }

    /// Materializes (or fetches) the intermediate for `mask`.
    fn materialize(
        &self,
        query: &Query,
        qk: u64,
        mask: TableMask,
    ) -> Result<Arc<Intermediate>, Overflow> {
        {
            let mut c = self.caches.lock();
            c.tick += 1;
            let tick = c.tick;
            if let Some(e) = c.inters.get_mut(&(qk, mask)) {
                e.stamp = tick;
                let inter = e.inter.clone();
                c.hits += 1;
                return Ok(inter);
            }
            c.misses += 1;
        }

        let inter = if mask.count() == 1 {
            let qt = mask.iter().next().expect("non-empty");
            Arc::new(scan_base(&self.db, query, qt))
        } else {
            // Decompose mask = rest + {t}: prefer a t whose `rest` is both
            // connected and already cached; otherwise any connected split.
            let mut choice: Option<(usize, bool)> = None;
            {
                let c = self.caches.lock();
                for t in mask.iter() {
                    let rest = TableMask(mask.0 & !(1u32 << t));
                    if !query.subgraph_connected(rest) {
                        continue;
                    }
                    // The removed table must connect to the rest.
                    if !query.connected(rest, TableMask::single(t)) {
                        continue;
                    }
                    let cached = c.inters.contains_key(&(qk, rest));
                    match choice {
                        Some((_, true)) => {}
                        _ => {
                            if cached || choice.is_none() {
                                choice = Some((t, cached));
                            }
                        }
                    }
                    if cached {
                        break;
                    }
                }
            }
            let (t, _) = choice.unwrap_or_else(|| {
                panic!(
                    "mask {:b} of {} has no connected decomposition",
                    mask.0, query.name
                )
            });
            let rest = TableMask(mask.0 & !(1u32 << t));
            let left = self.materialize(query, qk, rest)?;
            let right = self.materialize(query, qk, TableMask::single(t))?;
            Arc::new(hash_join(&self.db, query, &left, &right)?)
        };

        self.cards.lock().insert((qk, mask), inter.len() as f64);
        let mut c = self.caches.lock();
        let slots = inter.slots();
        c.slots_used += slots;
        let tick = c.tick;
        // Under concurrency two workers can race to materialize the same
        // mask; keep the accounting exact if the insert replaces one.
        if let Some(old) = c.inters.insert(
            (qk, mask),
            CacheEntry {
                inter: inter.clone(),
                stamp: tick,
            },
        ) {
            c.slots_used -= old.inter.slots();
        }
        // Evict least-recently-used intermediates over budget (never the
        // one just inserted).
        while c.slots_used > INTERMEDIATE_BUDGET_SLOTS && c.inters.len() > 1 {
            let victim = c
                .inters
                .iter()
                .filter(|(k, _)| **k != (qk, mask))
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    if let Some(e) = c.inters.remove(&k) {
                        c.slots_used -= e.inter.slots();
                    }
                }
                None => break,
            }
        }
        Ok(inter)
    }
}

impl CardEstimator for TrueCards {
    fn cardinality(&self, query: &Query, mask: TableMask) -> f64 {
        (self.true_card(query, mask) as f64).max(1e-6)
    }

    fn base_rows(&self, query: &Query, qt: usize) -> f64 {
        self.db.stats(query.tables[qt].table).num_rows as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use balsa_query::workloads::job_workload;
    use balsa_storage::{mini_imdb, DataGenConfig};

    fn fixture() -> (Arc<Database>, balsa_query::Workload) {
        let db = Arc::new(mini_imdb(DataGenConfig {
            scale: 0.05,
            ..Default::default()
        }));
        let w = job_workload(db.catalog(), 7);
        (db, w)
    }

    #[test]
    fn full_query_cardinalities_are_finite() {
        let (db, w) = fixture();
        let oracle = TrueCards::new(db);
        for q in w.queries.iter().take(8) {
            let c = oracle.true_card(q, q.all_mask());
            assert!(c < MAX_INTERMEDIATE_ROWS as u64, "{} blew up", q.name);
        }
    }

    #[test]
    fn cardinality_is_monotone_under_join_with_pk() {
        // Joining a fact table to a PK dimension cannot increase rows
        // beyond the fact side (each FK matches at most one PK).
        let (db, w) = fixture();
        let oracle = TrueCards::new(db.clone());
        let q = &w.queries[0]; // template 1: t, mc, cn, ct, kt star
                               // mask {t, mc}: every mc row matches exactly one title.
        let t = q.qt_by_alias("t").unwrap();
        let mc = q.qt_by_alias("mc").unwrap();
        let both = TableMask::single(t).union(TableMask::single(mc));
        let c_mc = oracle.true_card(q, TableMask::single(mc));
        let c_join = oracle.true_card(q, both);
        assert!(c_join <= c_mc, "join {c_join} > mc {c_mc}");
    }

    #[test]
    fn caching_avoids_recomputation() {
        let (db, w) = fixture();
        let oracle = TrueCards::new(db);
        let q = &w.queries[10];
        let m = q.all_mask();
        let c1 = oracle.true_card(q, m);
        let (_, misses1) = oracle.cache_stats();
        let c2 = oracle.true_card(q, m);
        let (_, misses2) = oracle.cache_stats();
        assert_eq!(c1, c2);
        assert_eq!(misses1, misses2, "second call must be fully cached");
    }

    #[test]
    fn subset_cardinalities_consistent_with_exec() {
        use crate::exec::{hash_join, scan_base};
        let (db, w) = fixture();
        let oracle = TrueCards::new(db.clone());
        let q = &w.queries[0];
        let t = q.qt_by_alias("t").unwrap();
        let mc = q.qt_by_alias("mc").unwrap();
        let a = scan_base(&db, q, t);
        let b = scan_base(&db, q, mc);
        let j = hash_join(&db, q, &a, &b).unwrap();
        let mask = TableMask::single(t).union(TableMask::single(mc));
        assert_eq!(oracle.true_card(q, mask), j.len() as u64);
    }

    #[test]
    fn distinct_queries_do_not_collide() {
        let (db, w) = fixture();
        let oracle = TrueCards::new(db);
        // Variants of one template share structure but differ in filters;
        // their cardinalities must be tracked separately.
        let groups = w.by_template();
        let (_, idxs) = &groups[0];
        let c0 = oracle.true_card(&w.queries[idxs[0]], w.queries[idxs[0]].all_mask());
        let c1 = oracle.true_card(&w.queries[idxs[1]], w.queries[idxs[1]].all_mask());
        // (They could coincide by chance; check the cache keys differ via
        // a second read of both.)
        assert_eq!(
            c0,
            oracle.true_card(&w.queries[idxs[0]], w.queries[idxs[0]].all_mask())
        );
        assert_eq!(
            c1,
            oracle.true_card(&w.queries[idxs[1]], w.queries[idxs[1]].all_mask())
        );
    }

    #[test]
    fn estimator_trait_impl() {
        let (db, w) = fixture();
        let oracle = TrueCards::new(db);
        let q = &w.queries[0];
        let s = oracle.selectivity(q, 0);
        assert!((0.0..=1.0).contains(&s));
    }
}
