//! Deterministic fault injection and recovery policies.
//!
//! The paper's only safety mechanism is §4.3 timeout censoring: every
//! execution either completes or times out. A production optimizer
//! service also sees engine crashes, transient errors, latency spikes,
//! and queries that hang without progressing — and it must treat all of
//! them as *expected* events with principled recovery. This module
//! supplies the failure model:
//!
//! * [`FaultConfig`] — per-class injection rates (plus a master seed)
//!   for the four chaos classes of [`FaultKind`];
//! * [`FaultInjector`] — draws faults from a **pinned, stateless RNG
//!   stream** keyed on `(seed, query_key, Plan::canonical_hash,
//!   attempt)`, so a chaos run is bit-reproducible: the same config
//!   and seed produce the same fault at the same execution no matter
//!   how many threads run, what ran before, or whether the process was
//!   killed and resumed in between;
//! * [`RetryPolicy`] — bounded retries with exponential backoff and
//!   pinned jitter (keyed the same way), plus the
//!   [`ExhaustedPolicy`] deciding what a permanently-failing execution
//!   becomes (a timeout-censored label at the kill point, or a dropped
//!   sample);
//! * [`ResilienceStats`] — the counters every recovery layer reports
//!   (`BENCH_learning.json`'s `resilience` block).
//!
//! With every rate at zero the injector draws nothing and every
//! recorded latency reproduces bit-for-bit — chaos is strictly opt-in.

/// One injected fault class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The engine reported a transient error (lock timeout, network
    /// blip); the execution died partway through. Retryable.
    Transient,
    /// The engine process crashed and restarted; the execution died
    /// partway through and the restart costs extra wall. Retryable.
    Crash,
    /// The execution completed but took `factor`× its true latency
    /// (background compaction, noisy neighbor). Not an error — the
    /// observed latency is simply worse, and may now exceed the budget.
    LatencySpike(f64),
    /// The execution stopped progressing entirely: with a timeout
    /// budget it is killed there (a guaranteed timeout); without one,
    /// the watchdog kills it after the full latency has been wasted and
    /// reports a transient error.
    Hang,
}

/// Per-class fault rates and the chaos seed. All rates are
/// probabilities in `[0, 1]` and must sum to at most 1; the default is
/// all-zero (chaos off).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Master chaos seed — part of every fault-draw key.
    pub seed: u64,
    /// Rate of [`FaultKind::Transient`].
    pub transient: f64,
    /// Rate of [`FaultKind::Crash`].
    pub crash: f64,
    /// Rate of [`FaultKind::LatencySpike`].
    pub spike: f64,
    /// Latency multiplier of an injected spike (> 1).
    pub spike_factor: f64,
    /// Rate of [`FaultKind::Hang`].
    pub hang: f64,
    /// Extra wall seconds charged for an engine restart after a crash.
    pub crash_restart_secs: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            transient: 0.0,
            crash: 0.0,
            spike: 0.0,
            spike_factor: 4.0,
            hang: 0.0,
            crash_restart_secs: 0.05,
        }
    }
}

impl FaultConfig {
    /// Whether every rate is zero (the injector never draws a fault).
    pub fn is_zero(&self) -> bool {
        self.transient == 0.0 && self.crash == 0.0 && self.spike == 0.0 && self.hang == 0.0
    }

    /// Parses a `BALSA_FAULTS`-style spec: comma-separated `key=value`
    /// pairs over `seed`, `transient`, `crash`, `spike`,
    /// `spike_factor`, `hang`, `restart` (e.g.
    /// `"seed=7,transient=0.05,crash=0.02,spike=0.03,spike_factor=4,hang=0.01"`).
    /// Unknown keys, malformed numbers, out-of-range rates, and rates
    /// summing past 1 are errors — a garbled chaos spec must never
    /// silently inject a different chaos than the one asked for.
    pub fn parse(spec: &str) -> Result<FaultConfig, String> {
        let mut cfg = FaultConfig::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {part:?}"))?;
            let (key, value) = (key.trim(), value.trim());
            let parse_rate = |v: &str| -> Result<f64, String> {
                let r: f64 = v
                    .parse()
                    .map_err(|_| format!("{key}: not a number: {v:?}"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("{key}: rate {r} outside [0, 1]"));
                }
                Ok(r)
            };
            match key {
                "seed" => {
                    cfg.seed = value
                        .parse()
                        .map_err(|_| format!("seed: not an integer: {value:?}"))?
                }
                "transient" => cfg.transient = parse_rate(value)?,
                "crash" => cfg.crash = parse_rate(value)?,
                "spike" => cfg.spike = parse_rate(value)?,
                "hang" => cfg.hang = parse_rate(value)?,
                "spike_factor" => {
                    let f: f64 = value
                        .parse()
                        .map_err(|_| format!("spike_factor: not a number: {value:?}"))?;
                    if !f.is_finite() || f <= 1.0 {
                        return Err(format!("spike_factor: {f} must be a finite factor > 1"));
                    }
                    cfg.spike_factor = f;
                }
                "restart" => {
                    let s: f64 = value
                        .parse()
                        .map_err(|_| format!("restart: not a number: {value:?}"))?;
                    if !s.is_finite() || s < 0.0 {
                        return Err(format!("restart: {s} must be a finite non-negative wall"));
                    }
                    cfg.crash_restart_secs = s;
                }
                other => return Err(format!("unknown fault key {other:?}")),
            }
        }
        let total = cfg.transient + cfg.crash + cfg.spike + cfg.hang;
        if total > 1.0 {
            return Err(format!("fault rates sum to {total} > 1"));
        }
        Ok(cfg)
    }

    /// Reads `BALSA_FAULTS` from the environment. Unset means chaos off
    /// (`None`); a set-but-garbled spec **warns loudly on stderr and
    /// runs fault-free** — the same warn-and-fallback contract as
    /// `BALSA_PLAN_THREADS`: a typo'd CI leg must never silently inject
    /// (or silently skip a check it claims to have run — the caller can
    /// tell the difference because `None` is returned, not a zero
    /// config).
    pub fn from_env() -> Option<FaultConfig> {
        match std::env::var("BALSA_FAULTS") {
            Ok(raw) => match FaultConfig::parse(&raw) {
                Ok(cfg) => Some(cfg),
                Err(why) => {
                    eprintln!(
                        "warning: BALSA_FAULTS={raw:?} is not a fault spec ({why}); \
                         running fault-free"
                    );
                    None
                }
            },
            Err(_) => None,
        }
    }

    /// A structural fingerprint of the config (seed + every rate's bit
    /// pattern) for checkpoint/resume validation.
    pub fn fingerprint(&self) -> u64 {
        let mut h = splitmix(self.seed ^ 0xFA017);
        for bits in [
            self.transient.to_bits(),
            self.crash.to_bits(),
            self.spike.to_bits(),
            self.spike_factor.to_bits(),
            self.hang.to_bits(),
            self.crash_restart_secs.to_bits(),
        ] {
            h = splitmix(h ^ bits);
        }
        h
    }
}

/// SplitMix64 finalizer — the workspace's standard keyed-hash mixer.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// 53-bit uniform in `[0, 1)` from a mixed word.
fn to_unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Draws faults from a pinned stream keyed on
/// `(seed, query_key, plan canonical hash, attempt)`. Stateless: every
/// draw is a pure function of its key, so injection is independent of
/// thread count, execution order, and process restarts.
#[derive(Debug, Clone, Copy)]
pub struct FaultInjector {
    cfg: FaultConfig,
}

impl FaultInjector {
    /// An injector over `cfg`.
    pub fn new(cfg: FaultConfig) -> Self {
        Self { cfg }
    }

    /// The configuration in force.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// The keyed word stream: draw `n` of the execution keyed by
    /// `(query, plan, attempt)`.
    fn word(&self, query_key: u64, plan_hash: u64, attempt: u32, n: u64) -> u64 {
        let mut h = splitmix(self.cfg.seed ^ 0xC7A05C0DE);
        h = splitmix(h ^ query_key);
        h = splitmix(h ^ plan_hash.rotate_left(17));
        h = splitmix(h ^ (attempt as u64) ^ (n << 32));
        h
    }

    /// The fault injected into this `(query, plan, attempt)` execution,
    /// if any. With all rates zero this returns `None` without
    /// consuming anything (there is no stream state to consume).
    pub fn draw(&self, query_key: u64, plan_hash: u64, attempt: u32) -> Option<FaultKind> {
        if self.cfg.is_zero() {
            return None;
        }
        let u = to_unit(self.word(query_key, plan_hash, attempt, 0));
        let mut edge = self.cfg.transient;
        if u < edge {
            return Some(FaultKind::Transient);
        }
        edge += self.cfg.crash;
        if u < edge {
            return Some(FaultKind::Crash);
        }
        edge += self.cfg.spike;
        if u < edge {
            return Some(FaultKind::LatencySpike(self.cfg.spike_factor));
        }
        edge += self.cfg.hang;
        if u < edge {
            return Some(FaultKind::Hang);
        }
        None
    }

    /// Where in the (budget-capped) execution a transient/crash fault
    /// kills the run, as a fraction in `[0.1, 0.9)` — keyed like
    /// [`FaultInjector::draw`], so the wasted wall is reproducible too.
    pub fn abort_fraction(&self, query_key: u64, plan_hash: u64, attempt: u32) -> f64 {
        0.1 + 0.8 * to_unit(self.word(query_key, plan_hash, attempt, 1))
    }
}

/// What becomes of an execution whose retries are exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExhaustedPolicy {
    /// Label it like a timeout killed at the last attempt's abort
    /// point: the run provably lasted that long without completing, so
    /// the abort wall is an honest §4.3-censored lower bound (every
    /// subtree whose latency exceeds it is censored there, exactly as
    /// a budget timeout would).
    Censor,
    /// Record nothing: the sample is dropped and only counted in
    /// [`ResilienceStats::abandoned`].
    Drop,
}

/// Bounded retry with exponential backoff and pinned jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in (simulated) wall seconds.
    pub backoff_base_secs: f64,
    /// Multiplier per further retry.
    pub backoff_mult: f64,
    /// Jitter half-width as a fraction of the backoff (`0.1` means
    /// ±10%), drawn from a stream keyed on `(seed, query_key, attempt)`
    /// so backoff wall-clock is bit-reproducible.
    pub jitter_frac: f64,
    /// Jitter seed.
    pub seed: u64,
    /// What an execution that exhausts every attempt becomes.
    pub exhausted: ExhaustedPolicy,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_base_secs: 0.1,
            backoff_mult: 2.0,
            jitter_frac: 0.1,
            seed: 0xB0FF,
            exhausted: ExhaustedPolicy::Censor,
        }
    }
}

impl RetryPolicy {
    /// The backoff charged before retrying `attempt` (0-based index of
    /// the attempt that just failed): `base · mult^attempt`, jittered
    /// by the pinned ±`jitter_frac` stream.
    pub fn backoff_secs(&self, query_key: u64, attempt: u32) -> f64 {
        let raw = self.backoff_base_secs * self.backoff_mult.powi(attempt as i32);
        let mut h = splitmix(self.seed ^ 0xBACC0FF);
        h = splitmix(h ^ query_key);
        h = splitmix(h ^ attempt as u64);
        raw * (1.0 + self.jitter_frac * (2.0 * to_unit(h) - 1.0))
    }

    /// A structural fingerprint for checkpoint/resume validation.
    pub fn fingerprint(&self) -> u64 {
        let mut h = splitmix(self.seed ^ 0x2E742);
        h = splitmix(h ^ self.max_attempts as u64);
        for bits in [
            self.backoff_base_secs.to_bits(),
            self.backoff_mult.to_bits(),
            self.jitter_frac.to_bits(),
        ] {
            h = splitmix(h ^ bits);
        }
        splitmix(h ^ matches!(self.exhausted, ExhaustedPolicy::Drop) as u64)
    }
}

/// Counters of everything the resilience layer absorbed — reported per
/// training run (`BENCH_learning.json`'s `resilience` block) and per
/// retry call.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResilienceStats {
    /// Faults injected across all attempts, all classes.
    pub faults_injected: u64,
    /// [`FaultKind::Transient`] faults observed.
    pub transients: u64,
    /// [`FaultKind::Crash`] faults observed.
    pub crashes: u64,
    /// [`FaultKind::LatencySpike`] faults observed.
    pub spikes: u64,
    /// [`FaultKind::Hang`] faults observed.
    pub hangs: u64,
    /// Retry attempts made (beyond each execution's first attempt).
    pub retries: u64,
    /// Executions abandoned after exhausting retries
    /// ([`ExhaustedPolicy::Drop`]).
    pub abandoned: u64,
    /// Executions that exhausted retries and were recorded as censored
    /// labels at the kill point ([`ExhaustedPolicy::Censor`]).
    pub exhausted_censored: u64,
    /// Iterations the training loop fell back to expert DP plans.
    pub fallback_iterations: u64,
    /// Backoff wall-clock charged to the simulated clock, in seconds.
    pub backoff_secs_charged: f64,
    /// Planner calls that returned a `PlanError` (disconnected graph,
    /// or a budget exhaustion even the greedy floor could not absorb);
    /// the query was skipped and the error surfaced, never masked.
    pub planner_errors: u64,
    /// Plans emitted by a degraded stage of the planner fallback chain
    /// (`SearchStats::degraded_levels > 0`) rather than the primary
    /// planner. Honest accounting: any nonzero value means some
    /// reported plan is not the primary planner's answer.
    pub planner_degraded: u64,
    /// Plans whose search hit a `PlanBudget` boundary check
    /// (`SearchStats::budget_exhausted`), whether or not the fallback
    /// chain then degraded.
    pub planner_exhausted: u64,
}

impl ResilienceStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &ResilienceStats) {
        self.faults_injected += other.faults_injected;
        self.transients += other.transients;
        self.crashes += other.crashes;
        self.spikes += other.spikes;
        self.hangs += other.hangs;
        self.retries += other.retries;
        self.abandoned += other.abandoned;
        self.exhausted_censored += other.exhausted_censored;
        self.fallback_iterations += other.fallback_iterations;
        self.backoff_secs_charged += other.backoff_secs_charged;
        self.planner_errors += other.planner_errors;
        self.planner_degraded += other.planner_degraded;
        self.planner_exhausted += other.planner_exhausted;
    }

    /// Records one observed fault of `kind`.
    pub fn count_fault(&mut self, kind: FaultKind) {
        self.faults_injected += 1;
        match kind {
            FaultKind::Transient => self.transients += 1,
            FaultKind::Crash => self.crashes += 1,
            FaultKind::LatencySpike(_) => self.spikes += 1,
            FaultKind::Hang => self.hangs += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_config_never_draws() {
        let inj = FaultInjector::new(FaultConfig::default());
        for qk in 0..50u64 {
            for attempt in 0..3 {
                assert_eq!(inj.draw(qk, qk.wrapping_mul(31), attempt), None);
            }
        }
    }

    #[test]
    fn draws_are_keyed_and_reproducible() {
        let cfg = FaultConfig {
            seed: 7,
            transient: 0.2,
            crash: 0.1,
            spike: 0.1,
            hang: 0.05,
            ..FaultConfig::default()
        };
        let a = FaultInjector::new(cfg);
        let b = FaultInjector::new(cfg);
        let mut classes = [0usize; 5];
        for qk in 0..400u64 {
            for attempt in 0..2 {
                let d1 = a.draw(qk, splitmix(qk), attempt);
                let d2 = b.draw(qk, splitmix(qk), attempt);
                assert_eq!(d1, d2, "same key must draw the same fault");
                match d1 {
                    None => classes[0] += 1,
                    Some(FaultKind::Transient) => classes[1] += 1,
                    Some(FaultKind::Crash) => classes[2] += 1,
                    Some(FaultKind::LatencySpike(f)) => {
                        assert_eq!(f, cfg.spike_factor);
                        classes[3] += 1;
                    }
                    Some(FaultKind::Hang) => classes[4] += 1,
                }
            }
        }
        // Every class realized, roughly at its rate (800 draws).
        assert!(classes.iter().all(|&c| c > 0), "classes: {classes:?}");
        assert!(classes[1] > classes[4], "transient rate 4x hang rate");
        // A different seed draws a different sequence.
        let c = FaultInjector::new(FaultConfig { seed: 8, ..cfg });
        assert!((0..400u64).any(|qk| c.draw(qk, splitmix(qk), 0) != a.draw(qk, splitmix(qk), 0)));
    }

    #[test]
    fn attempts_are_independent_draws() {
        let cfg = FaultConfig {
            seed: 3,
            transient: 0.5,
            ..FaultConfig::default()
        };
        let inj = FaultInjector::new(cfg);
        // With rate 0.5 some key must fault on attempt 0 and clear on
        // attempt 1 — the retry's whole reason to exist.
        assert!((0..100u64).any(|qk| {
            inj.draw(qk, 1, 0) == Some(FaultKind::Transient) && inj.draw(qk, 1, 1).is_none()
        }));
    }

    #[test]
    fn abort_fraction_is_bounded_and_pinned() {
        let inj = FaultInjector::new(FaultConfig {
            seed: 11,
            transient: 1.0,
            ..FaultConfig::default()
        });
        for qk in 0..100u64 {
            let f = inj.abort_fraction(qk, 5, 0);
            assert!((0.1..0.9).contains(&f));
            assert_eq!(f, inj.abort_fraction(qk, 5, 0));
        }
    }

    #[test]
    fn backoff_grows_exponentially_with_pinned_jitter() {
        let p = RetryPolicy::default();
        let b0 = p.backoff_secs(42, 0);
        let b1 = p.backoff_secs(42, 1);
        let b2 = p.backoff_secs(42, 2);
        assert_eq!(b0, p.backoff_secs(42, 0), "jitter must be pinned");
        // Jitter is ±10%, growth is 2x: ordering is strict.
        assert!(b0 < b1 && b1 < b2);
        assert!((b0 - 0.1).abs() <= 0.1 * 0.1 + 1e-12);
        assert!((b2 - 0.4).abs() <= 0.4 * 0.1 + 1e-12);
        // Different queries get different jitter, same envelope.
        assert_ne!(p.backoff_secs(1, 0), p.backoff_secs(2, 0));
    }

    /// The `BALSA_FAULTS` parse table: accepted specs round-trip into
    /// the expected config, garbled specs are errors (the env reader
    /// warns and runs fault-free — never a silently different chaos).
    #[test]
    fn fault_spec_parse_table() {
        let ok: &[(&str, FaultConfig)] = &[
            ("", FaultConfig::default()),
            (
                "transient=0.05",
                FaultConfig {
                    transient: 0.05,
                    ..FaultConfig::default()
                },
            ),
            (
                "seed=7,transient=0.05,crash=0.02,spike=0.03,spike_factor=4,hang=0.01",
                FaultConfig {
                    seed: 7,
                    transient: 0.05,
                    crash: 0.02,
                    spike: 0.03,
                    spike_factor: 4.0,
                    hang: 0.01,
                    ..FaultConfig::default()
                },
            ),
            (
                " seed = 9 , restart = 0.25 ",
                FaultConfig {
                    seed: 9,
                    crash_restart_secs: 0.25,
                    ..FaultConfig::default()
                },
            ),
        ];
        for (spec, want) in ok {
            assert_eq!(&FaultConfig::parse(spec).unwrap(), want, "spec {spec:?}");
        }
        let bad = [
            "transient",               // no value
            "transient=lots",          // not a number
            "transient=1.5",           // rate out of range
            "transient=-0.1",          // negative rate
            "spike_factor=0.5",        // factor must exceed 1
            "restart=-1",              // negative wall
            "seed=7.5",                // non-integer seed
            "chaos=0.5",               // unknown key
            "transient=0.6,crash=0.6", // rates sum past 1
        ];
        for spec in bad {
            assert!(
                FaultConfig::parse(spec).is_err(),
                "spec {spec:?} must be rejected"
            );
        }
    }

    #[test]
    fn fingerprints_separate_configs() {
        let a = FaultConfig::default();
        let b = FaultConfig {
            transient: 0.05,
            ..a
        };
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), FaultConfig::default().fingerprint());
        let p = RetryPolicy::default();
        let q = RetryPolicy {
            max_attempts: 5,
            ..p
        };
        assert_ne!(p.fingerprint(), q.fingerprint());
    }
}
