//! Simulated wall-clock accounting.
//!
//! The paper's learning-curve figures (Figs 7, 8, 10–13, 15) plot
//! normalized workload runtime against elapsed hours. Our training loop
//! runs in simulated time: every plan "execution" charges its simulated
//! latency, divided by a parallelism factor modelling the pool of
//! execution VMs (§8.1 reports an average of 2.5 nodes per run; Fig 8
//! uses 1), and every model update charges a per-SGD-step cost modelling
//! the paper's GPU. Planning time is charged at its *measured* value —
//! our planner really runs.

/// Accounts simulated elapsed seconds for one training run.
#[derive(Debug, Clone)]
pub struct SimClock {
    seconds: f64,
    parallelism: f64,
    sgd_step_secs: f64,
}

impl SimClock {
    /// Creates a clock. `parallelism` ≥ 1 models the execution-node pool;
    /// `sgd_step_secs` is the modelled cost of one SGD step.
    pub fn new(parallelism: f64, sgd_step_secs: f64) -> Self {
        assert!(parallelism >= 1.0);
        Self {
            seconds: 0.0,
            parallelism,
            sgd_step_secs,
        }
    }

    /// Default configuration matching §8.1 (avg 2.5 execution nodes).
    pub fn paper_default() -> Self {
        Self::new(2.5, 0.004)
    }

    /// Non-parallel configuration (Fig 8).
    pub fn non_parallel() -> Self {
        Self::new(1.0, 0.004)
    }

    /// Elapsed simulated seconds.
    pub fn seconds(&self) -> f64 {
        self.seconds
    }

    /// Elapsed simulated hours.
    pub fn hours(&self) -> f64 {
        self.seconds / 3600.0
    }

    /// Charges one iteration's plan executions. With `parallelism` p, n
    /// plans of total latency L and maximum latency M take
    /// `max(L / p, M)` — no schedule can beat either bound.
    pub fn charge_executions(&mut self, latencies: &[f64]) {
        if latencies.is_empty() {
            return;
        }
        let total: f64 = latencies.iter().sum();
        let max = latencies.iter().cloned().fold(0.0, f64::max);
        self.seconds += (total / self.parallelism).max(max);
    }

    /// Charges planning time (measured, already in seconds).
    pub fn charge_planning(&mut self, secs: f64) {
        self.seconds += secs.max(0.0);
    }

    /// Charges one batch of per-query planning times executed on
    /// `workers` parallel planner threads: with total time L and maximum
    /// single-query time M the wall-clock charged is `max(L / w, M)` —
    /// the same two scheduling bounds as [`SimClock::charge_executions`].
    /// `workers = 1` charges the serial sum.
    pub fn charge_planning_parallel(&mut self, secs: &[f64], workers: usize) {
        if secs.is_empty() {
            return;
        }
        let w = workers.max(1) as f64;
        let total: f64 = secs.iter().map(|s| s.max(0.0)).sum();
        let max = secs.iter().cloned().fold(0.0, f64::max);
        self.seconds += (total / w).max(max);
    }

    /// Charges `steps` SGD steps of model updating.
    pub fn charge_update(&mut self, steps: u64) {
        self.seconds += steps as f64 * self.sgd_step_secs;
    }

    /// Charges an arbitrary duration (e.g. simulation data collection).
    pub fn charge_raw(&mut self, secs: f64) {
        self.seconds += secs.max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execution_charging_respects_bounds() {
        let mut c = SimClock::new(2.0, 0.001);
        c.charge_executions(&[1.0, 1.0, 4.0]);
        // total/p = 3.0, max = 4.0 -> 4.0
        assert!((c.seconds() - 4.0).abs() < 1e-9);
        let mut c2 = SimClock::new(2.0, 0.001);
        c2.charge_executions(&[1.0, 1.0, 1.0, 1.0]);
        // total/p = 2.0 > max 1.0
        assert!((c2.seconds() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn non_parallel_charges_sum() {
        let mut c = SimClock::non_parallel();
        c.charge_executions(&[1.0, 2.0, 3.0]);
        assert!((c.seconds() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_planning_charges_makespan_bounds() {
        let mut c = SimClock::new(1.0, 0.001);
        c.charge_planning_parallel(&[1.0, 1.0, 4.0], 2);
        // total/w = 3.0 < max 4.0 -> 4.0
        assert!((c.seconds() - 4.0).abs() < 1e-9);
        let mut c2 = SimClock::new(1.0, 0.001);
        c2.charge_planning_parallel(&[1.0; 8], 4);
        // total/w = 2.0 > max 1.0
        assert!((c2.seconds() - 2.0).abs() < 1e-9);
        // workers = 1 is the serial sum; empty batches charge nothing.
        let mut c3 = SimClock::new(1.0, 0.001);
        c3.charge_planning_parallel(&[0.5, 0.25], 1);
        assert!((c3.seconds() - 0.75).abs() < 1e-9);
        c3.charge_planning_parallel(&[], 8);
        assert!((c3.seconds() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn updates_and_planning_accumulate() {
        let mut c = SimClock::new(1.0, 0.01);
        c.charge_update(100);
        c.charge_planning(0.5);
        c.charge_raw(0.5);
        assert!((c.seconds() - 2.0).abs() < 1e-9);
        assert!((c.hours() - 2.0 / 3600.0).abs() < 1e-12);
    }
}
